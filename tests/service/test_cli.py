"""End-to-end CLI: `repro serve` + `repro job ...` as real processes.

This is the acceptance path of the ISSUE: a server process multiplexing
concurrent mixed-priority jobs over a small fleet, driven entirely
through the batch client, with --wait exit codes distinguishing
pass (0) / fail (1) / cancelled (3) / infrastructure failure (4).
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]


def env():
    merged = dict(os.environ)
    merged["PYTHONPATH"] = str(REPO / "src")
    return merged


def cli(*args, timeout=120):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout, env=env())


@pytest.fixture
def served(tmp_path):
    data_dir = tmp_path / "svc"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--data-dir", str(data_dir), "--fleet", "2", "--quantum", "15"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env())
    # The server creates its directories on boot; wait for that.
    deadline = time.monotonic() + 30
    while not (data_dir / "inbox").exists():
        if process.poll() is not None:
            raise AssertionError(
                f"server died on boot: {process.stderr.read()}")
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("server never created its data dir")
        time.sleep(0.05)
    yield data_dir
    process.send_signal(signal.SIGTERM)
    try:
        process.wait(timeout=30)
    except subprocess.TimeoutExpired:
        process.kill()


class TestCliRoundTrip:
    def test_clean_job_exits_zero(self, served):
        run = cli("job", "submit", "--data-dir", str(served),
                  "repro.workloads.dining:dining_philosophers",
                  "-a", "2", "--config", "strategy='dfs'",
                  "--priority", "smoke", "--wait", "--timeout", "90")
        assert run.returncode == 0, run.stderr
        job_id = run.stdout.splitlines()[0].strip()
        assert "verdict=pass" in run.stdout

        status = cli("job", "status", "--data-dir", str(served), job_id)
        record = json.loads(status.stdout)
        assert record["state"] == "done"
        assert record["executions"] == 42

        result = cli("job", "result", "--data-dir", str(served), job_id)
        assert json.loads(result.stdout)["verdict"] == "pass"

        listing = cli("job", "list", "--data-dir", str(served))
        assert job_id in listing.stdout

    def test_buggy_job_exits_one(self, served):
        run = cli("job", "submit", "--data-dir", str(served),
                  "repro.workloads.wsq:work_stealing_queue",
                  "-a", "1", "-a", "1", "-a", "1",
                  "--config", "strategy='icb'",
                  "--wait", "--timeout", "120")
        assert run.returncode == 1, run.stdout + run.stderr
        assert "verdict=fail" in run.stdout

    def test_cancelled_job_exits_three(self, served):
        submitted = cli("job", "submit", "--data-dir", str(served),
                        "repro.workloads.wsq:work_stealing_queue",
                        "-a", "1", "-a", "1",
                        "--config", "strategy='dfs'",
                        "--config", "max_executions=100000",
                        "--priority", "bulk")
        job_id = submitted.stdout.strip()
        assert submitted.returncode == 0
        cancel = cli("job", "cancel", "--data-dir", str(served), job_id,
                     "--wait", "--timeout", "90")
        assert cancel.returncode == 3, cancel.stdout + cancel.stderr
        assert "cancelled" in cancel.stdout

    def test_broken_program_exits_four(self, served):
        run = cli("job", "submit", "--data-dir", str(served),
                  "repro.workloads.missing_module:nope",
                  "--wait", "--timeout", "60")
        assert run.returncode == 4, run.stdout + run.stderr

    def test_concurrent_mixed_priority_batch(self, served):
        """Eight concurrent jobs across priorities over a fleet of 2 —
        the ISSUE's acceptance scenario — all reach correct verdicts."""
        jobs = []
        for i in range(2):
            big = cli("job", "submit", "--data-dir", str(served),
                      "repro.workloads.wsq:work_stealing_queue",
                      "-a", "1", "-a", "1",
                      "--config", "strategy='dfs'",
                      "--config", "max_executions=300",
                      "--priority", "bulk")
            jobs.append(("pass", big.stdout.strip()))
        for i in range(3):
            clean = cli("job", "submit", "--data-dir", str(served),
                        "repro.workloads.dining:dining_philosophers",
                        "-a", "2", "--config", "strategy='dfs'",
                        "--priority", "smoke")
            jobs.append(("pass", clean.stdout.strip()))
        for i in range(2):
            buggy = cli("job", "submit", "--data-dir", str(served),
                        "repro.workloads.wsq:work_stealing_queue",
                        "-a", "1", "-a", "1", "-a", "1",
                        "--config", "strategy='icb'")
            jobs.append(("fail", buggy.stdout.strip()))
        livelock = cli("job", "submit", "--data-dir", str(served),
                       "repro.workloads.dining:"
                       "dining_philosophers_livelock",
                       "-a", "2", "--config", "strategy='dfs'")
        jobs.append(("fail", livelock.stdout.strip()))

        assert len(jobs) == 8
        for expected, job_id in jobs:
            assert job_id.startswith("job-"), job_id
            record = wait_terminal(served, job_id, timeout=300)
            assert record["state"] == "done", record
            assert record["verdict"] == expected, (job_id, record)

        metrics = json.loads((served / "metrics.json").read_text())
        assert metrics["counters"].get("scheduler.starvation", 0) == 0

    def test_watch_streams_events(self, served):
        submitted = cli("job", "submit", "--data-dir", str(served),
                        "repro.workloads.dining:dining_philosophers",
                        "-a", "2", "--config", "strategy='dfs'")
        job_id = submitted.stdout.strip()
        watch = cli("job", "watch", "--data-dir", str(served), job_id,
                    "--timeout", "90")
        assert watch.returncode == 0, watch.stderr
        kinds = {json.loads(line)["type"]
                 for line in watch.stdout.splitlines() if line.strip()}
        assert "job.state" in kinds
        assert "job.quantum" in kinds


def wait_terminal(data_dir, job_id, *, timeout):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status = cli("job", "status", "--data-dir", str(data_dir), job_id)
        if status.returncode == 0:
            record = json.loads(status.stdout)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
        time.sleep(0.3)
    raise AssertionError(f"job {job_id} not terminal after {timeout}s")


class TestTransportValidation:
    def test_requires_exactly_one_transport(self, tmp_path):
        neither = cli("job", "list")
        assert neither.returncode != 0
        both = cli("job", "list", "--data-dir", str(tmp_path),
                   "--url", "http://localhost:1")
        assert both.returncode != 0
