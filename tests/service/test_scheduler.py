"""Unit tests for the inter-job DWRR scheduler.

These drive the scheduler synchronously (single thread, explicit
``next_job`` calls) so dispatch order is fully deterministic; the
threaded behavior is covered by the server tests.
"""

import threading

import pytest

from repro.obs import MetricsRegistry
from repro.service import JobScheduler, TokenBucket


def drain(scheduler, count):
    order = []
    for _ in range(count):
        job = scheduler.next_job(timeout=0.1)
        if job is None:
            break
        order.append(job)
    return order


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=lambda: clock[0])
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst exhausted
        clock[0] = 1.0
        assert bucket.try_acquire()  # one token back per second
        assert not bucket.try_acquire()

    def test_never_exceeds_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=lambda: clock[0])
        clock[0] = 100.0
        grabbed = sum(bucket.try_acquire() for _ in range(10))
        assert grabbed == 3

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=-1)


class TestDwrrDispatch:
    def test_single_class_round_robins(self):
        sched = JobScheduler()
        for name in ("a", "b", "c"):
            sched.submit(name, "default", "cli")
        order = []
        for _ in range(6):
            job = sched.next_job(timeout=0.1)
            order.append(job)
            sched.requeue(job)
        assert order == ["a", "b", "c", "a", "b", "c"]

    def test_weighted_ratio_across_classes(self):
        sched = JobScheduler()
        sched.submit("smoke-1", "smoke", "cli")
        sched.submit("default-1", "default", "cli")
        sched.submit("bulk-1", "bulk", "cli")
        counts = {"smoke-1": 0, "default-1": 0, "bulk-1": 0}
        for _ in range(100):
            job = sched.next_job(timeout=0.1)
            counts[job] += 1
            sched.requeue(job)
        # DWRR replenishes 6:3:1, so over 10 dispatches each cycle the
        # ratio is exact.
        assert counts["smoke-1"] == 60
        assert counts["default-1"] == 30
        assert counts["bulk-1"] == 10

    def test_empty_class_forfeits_deficit(self):
        sched = JobScheduler()
        sched.submit("bulk-1", "bulk", "cli")
        # Bulk alone gets every quantum (no hoarded smoke credit later).
        assert drain_with_requeue(sched, 5) == ["bulk-1"] * 5
        sched.submit("smoke-1", "smoke", "cli")
        counts = {"smoke-1": 0, "bulk-1": 0}
        for _ in range(14):
            job = sched.next_job(timeout=0.1)
            counts[job] += 1
            sched.requeue(job)
        assert counts["smoke-1"] == 12
        assert counts["bulk-1"] == 2

    def test_finish_removes_queued_job(self):
        sched = JobScheduler()
        sched.submit("a", "default", "cli")
        sched.submit("b", "default", "cli")
        sched.finish("a")  # cancelled while still queued
        assert sched.next_job(timeout=0.1) == "b"
        assert sched.pending() == 0

    def test_duplicate_submit_rejected(self):
        sched = JobScheduler()
        sched.submit("a", "default", "cli")
        with pytest.raises(ValueError):
            sched.submit("a", "default", "cli")

    def test_unknown_priority_rejected(self):
        sched = JobScheduler()
        with pytest.raises(ValueError):
            sched.submit("a", "urgent", "cli")

    def test_custom_weights(self):
        sched = JobScheduler(weights={"fast": 3, "slow": 1})
        sched.submit("f", "fast", "cli")
        sched.submit("s", "slow", "cli")
        counts = {"f": 0, "s": 0}
        for _ in range(8):
            job = sched.next_job(timeout=0.1)
            counts[job] += 1
            sched.requeue(job)
        assert counts == {"f": 6, "s": 2}


def drain_with_requeue(sched, count):
    order = []
    for _ in range(count):
        job = sched.next_job(timeout=0.1)
        order.append(job)
        sched.requeue(job)
    return order


class TestStarvationInvariant:
    def test_wait_bound_never_violated_under_load(self):
        metrics = MetricsRegistry()
        sched = JobScheduler(metrics=metrics)
        # One hungry bulk job plus a stream of smoke jobs: every smoke
        # dispatch must land within its DWRR bound.
        sched.submit("bulk-1", "bulk", "batch")
        for i in range(20):
            sched.submit(f"smoke-{i}", "smoke", "cli")
        for _ in range(400):
            job = sched.next_job(timeout=0.1)
            sched.requeue(job)
        assert metrics.counter("scheduler.starvation").value == 0
        assert metrics.counter("scheduler.quanta").value == 400
        hist = metrics.histogram("scheduler.wait_quanta")
        assert hist.count == 400

    def test_smoke_waits_bounded_with_deep_bulk_backlog(self):
        metrics = MetricsRegistry()
        sched = JobScheduler(metrics=metrics)
        for i in range(50):
            sched.submit(f"bulk-{i}", "bulk", "batch")
        # Warm the rotation, then inject a smoke job late.
        for _ in range(30):
            sched.requeue(sched.next_job(timeout=0.1))
        sched.submit("smoke-1", "smoke", "cli")
        waited = 0
        while True:
            job = sched.next_job(timeout=0.1)
            if job == "smoke-1":
                break
            waited += 1
            sched.requeue(job)
        # One replenish cycle dispatches at most sum(weights) quanta.
        assert waited <= 10
        assert metrics.counter("scheduler.starvation").value == 0


class TestAdmissionControl:
    def test_rate_limit_charges_per_client(self):
        clock = [0.0]
        sched = JobScheduler(submit_rate=1.0, submit_burst=2.0,
                             clock=lambda: clock[0])
        assert sched.try_admit_rate("alice")
        assert sched.try_admit_rate("alice")
        assert not sched.try_admit_rate("alice")
        assert sched.try_admit_rate("bob")  # separate bucket
        clock[0] = 5.0
        assert sched.try_admit_rate("alice")

    def test_per_client_cap_backlogs_excess(self):
        sched = JobScheduler(max_active_per_client=1)
        sched.submit("a1", "default", "alice")
        sched.submit("a2", "default", "alice")
        sched.submit("b1", "default", "bob")
        # Only a1 and b1 are runnable; a2 waits for alice's slot.
        first_round = set(drain(sched, 3))
        assert first_round == {"a1", "b1"}
        sched.finish("a1")
        assert sched.next_job(timeout=0.1) == "a2"

    def test_backlogged_job_can_be_finished(self):
        sched = JobScheduler(max_active_per_client=1)
        sched.submit("a1", "default", "alice")
        sched.submit("a2", "default", "alice")
        sched.finish("a2")  # cancel straight out of the backlog
        sched.finish("a1")
        assert sched.pending() == 0
        assert sched.snapshot() == []

    def test_unlimited_without_configuration(self):
        sched = JobScheduler()
        assert sched.try_admit_rate("anyone")
        for i in range(10):
            sched.submit(f"j{i}", "default", "one-client")
        assert len(drain(sched, 10)) == 10


class TestLifecycle:
    def test_close_wakes_blocked_worker(self):
        sched = JobScheduler()
        got = []

        def worker():
            got.append(sched.next_job(timeout=5.0))

        thread = threading.Thread(target=worker)
        thread.start()
        sched.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [None]

    def test_timeout_returns_none(self):
        sched = JobScheduler()
        assert sched.next_job(timeout=0.05) is None

    def test_queue_lengths_snapshot(self):
        sched = JobScheduler()
        sched.submit("a", "smoke", "cli")
        sched.submit("b", "bulk", "cli")
        assert sched.queue_lengths() == {"smoke": 1, "default": 0,
                                         "bulk": 1}
        assert sched.snapshot() == ["a", "b"]
