"""Inter-job fairness: smoke jobs never starve behind bulk sweeps.

The ISSUE-level guarantee: with one (or more) huge bulk jobs hogging the
fleet, every smoke job still completes within a bounded number of
scheduler quanta, and the measured starvation invariant
(``scheduler.starvation``) stays zero throughout.
"""

import pytest

from repro.service import CheckServer, JobSpec, JobState

#: A workload big enough that bulk jobs outlive every smoke job: the
#: work-stealing queue without its bug has a six-digit dfs space, so a
#: capped run keeps the bulk lane saturated for the whole test.
BULK = JobSpec(
    program="repro.workloads.wsq:work_stealing_queue",
    factory_args=["1", "1"],
    config={"strategy": "dfs", "max_executions": 100_000},
    priority="bulk", client="batch")

#: dining(2) under dfs finishes in 42 executions — a real smoke check.
def smoke(i):
    return JobSpec(
        program="repro.workloads.dining:dining_philosophers",
        factory_args=["2"], config={"strategy": "dfs"},
        priority="smoke", client=f"dev-{i}")


class TestSmokeNeverStarves:
    def test_smoke_jobs_complete_under_bulk_load(self, tmp_path):
        server = CheckServer(tmp_path / "svc", fleet=2,
                             quantum_executions=10)
        bulk = server.submit(BULK)
        smokes = [server.submit(smoke(i)) for i in range(4)]
        server.start()
        try:
            for record in smokes:
                final = server.wait(record.id, timeout=120)
                assert final.state is JobState.DONE
                assert final.verdict == "pass"
        finally:
            server.stop()

        # The bulk job must still be in flight — otherwise the smoke
        # jobs didn't actually compete with it for the fleet.
        assert not server.job(bulk.id).state.terminal
        assert server.job(bulk.id).executions > 0

        # Starvation is a measured invariant, not a hope: every smoke
        # dispatch landed inside its DWRR wait bound.
        counters = server.metrics.to_dict()["counters"]
        assert counters.get("scheduler.starvation", 0) == 0
        assert counters["scheduler.quanta"] > 0
        assert server.health()["starvation"] == 0

    def test_smoke_completes_within_bounded_quanta(self, tmp_path):
        """Each smoke job needs ceil(42/10)=5 quanta of work; with the
        6:1 smoke:bulk weighting and one bulk competitor, the whole
        smoke batch must finish within a small constant multiple of
        that — far less than the bulk job's runway."""
        server = CheckServer(tmp_path / "svc", fleet=1,
                             quantum_executions=10)
        server.submit(BULK)
        smokes = [server.submit(smoke(i)) for i in range(3)]
        server.start()
        try:
            for record in smokes:
                server.wait(record.id, timeout=120)
        finally:
            server.stop()

        counters = server.metrics.to_dict()["counters"]
        total_quanta = counters["scheduler.quanta"]
        # 3 smoke jobs * 5 quanta each = 15 smoke quanta.  DWRR grants
        # bulk at most 1 quantum per 6 smoke quanta, plus slack for
        # replenish boundaries and the final drain dispatches.
        assert total_quanta <= 15 + 8, (
            f"smoke batch needed {total_quanta} fleet quanta — bulk "
            f"stole more than its weight")
        assert counters.get("scheduler.starvation", 0) == 0

    def test_wait_histogram_recorded(self, tmp_path):
        server = CheckServer(tmp_path / "svc", fleet=1,
                             quantum_executions=10)
        server.submit(BULK)
        record = server.submit(smoke(0))
        server.start()
        try:
            server.wait(record.id, timeout=120)
        finally:
            server.stop()
        hist = server.metrics.histogram("scheduler.wait_quanta")
        assert hist.count > 0
        # The smoke job's dispatches never waited longer than one full
        # replenish cycle (sum of weights = 10 dispatches).
        assert hist.max <= 10


class TestPriorityThroughput:
    def test_default_class_sits_between_smoke_and_bulk(self, tmp_path):
        """With all three classes saturated, delivered quanta follow the
        6:3:1 weights (within one replenish cycle of slack)."""
        server = CheckServer(tmp_path / "svc", fleet=1,
                             quantum_executions=5)
        specs = {
            "smoke": JobSpec(program=BULK.program, factory_args=["1", "1"],
                             config=dict(BULK.config), priority="smoke",
                             client="a"),
            "default": JobSpec(program=BULK.program, factory_args=["1", "1"],
                               config=dict(BULK.config), priority="default",
                               client="b"),
            "bulk": BULK,
        }
        records = {name: server.submit(s) for name, s in specs.items()}
        server.start()
        import time
        time.sleep(4.0)
        server.stop()

        quanta = {name: server.job(r.id).quanta
                  for name, r in records.items()}
        assert quanta["smoke"] > quanta["default"] > quanta["bulk"] > 0, \
            quanta
        counters = server.metrics.to_dict()["counters"]
        assert counters.get("scheduler.starvation", 0) == 0
