"""Job model + durable store: state machine, persistence, transports."""

import json

import pytest

from repro.service import JobRecord, JobSpec, JobState, new_job_id
from repro.service.store import JobStore


def spec(**overrides):
    base = dict(program="repro.workloads.dining:dining_philosophers",
                factory_args=["2"], config={"strategy": "dfs"})
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpec:
    def test_validate_accepts_known_config(self):
        spec(config={"strategy": "icb", "max_executions": 10,
                     "seed": 7}).validate()

    def test_validate_rejects_unknown_config_key(self):
        with pytest.raises(ValueError, match="max_execution"):
            spec(config={"max_execution": 10}).validate()

    def test_validate_rejects_bad_priority(self):
        with pytest.raises(ValueError, match="priority"):
            spec(priority="urgent").validate()

    def test_validate_rejects_bad_program_spec(self):
        with pytest.raises(ValueError, match="factory"):
            spec(program="no-colon-here").validate()

    def test_validate_rejects_bad_stream(self):
        with pytest.raises(ValueError, match="stream"):
            spec(stream="firehose").validate()

    def test_round_trips_through_dict(self):
        original = spec(priority="smoke", client="ci", stream="decisions")
        assert JobSpec.from_dict(original.to_dict()) == original


class TestJobRecordStateMachine:
    def test_legal_lifecycle(self):
        record = JobRecord(id=new_job_id(), spec=spec())
        assert record.state is JobState.QUEUED
        record.transition(JobState.RUNNING)
        assert record.started_at is not None
        record.transition(JobState.DONE)
        assert record.finished_at is not None
        assert record.state.terminal

    def test_queued_can_cancel_or_fail(self):
        for target in (JobState.CANCELLED, JobState.FAILED):
            record = JobRecord(id=new_job_id(), spec=spec())
            record.transition(target)
            assert record.state is target

    def test_terminal_states_are_frozen(self):
        record = JobRecord(id=new_job_id(), spec=spec())
        record.transition(JobState.CANCELLED)
        with pytest.raises(ValueError, match="illegal transition"):
            record.transition(JobState.RUNNING)

    def test_queued_cannot_jump_to_done(self):
        record = JobRecord(id=new_job_id(), spec=spec())
        with pytest.raises(ValueError, match="illegal transition"):
            record.transition(JobState.DONE)

    def test_job_id_cannot_escape_the_jobs_dir(self):
        for bad in ("../evil", "a/b", ".hidden", "", "a\\b"):
            with pytest.raises(ValueError, match="invalid job id"):
                JobRecord(id=bad, spec=spec())

    def test_round_trips_through_dict(self):
        record = JobRecord(id=new_job_id(), spec=spec())
        record.transition(JobState.RUNNING)
        record.executions = 120
        record.quanta = 3
        clone = JobRecord.from_dict(record.to_dict())
        assert clone.to_dict() == record.to_dict()

    def test_ids_sort_by_submission_time(self):
        a, b = new_job_id(), new_job_id()
        assert a != b
        assert a.split("-")[1] <= b.split("-")[1]


class TestJobStore:
    def test_create_save_load(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord(id=new_job_id(), spec=spec())
        store.create(record)
        assert store.exists(record.id)
        loaded = store.load(record.id)
        assert loaded.to_dict() == record.to_dict()

    def test_create_twice_rejected(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord(id=new_job_id(), spec=spec())
        store.create(record)
        with pytest.raises(ValueError, match="already exists"):
            store.create(record)

    def test_load_unknown_raises_keyerror(self, tmp_path):
        with pytest.raises(KeyError):
            JobStore(tmp_path).load("job-nope")

    def test_jobs_iterates_sorted(self, tmp_path):
        store = JobStore(tmp_path)
        ids = [new_job_id() for _ in range(3)]
        for job_id in reversed(ids):
            store.create(JobRecord(id=job_id, spec=spec()))
        assert [r.id for r in store.jobs()] == sorted(ids)

    def test_results_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.load_result("job-x") is None
        store.save_result("job-x", {"verdict": "pass", "executions": 42})
        assert store.load_result("job-x")["verdict"] == "pass"

    def test_record_write_is_atomic(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord(id=new_job_id(), spec=spec())
        store.create(record)
        record.executions = 999
        store.save(record)
        assert not list(store.job_dir(record.id).glob("*.tmp"))
        assert store.load(record.id).executions == 999


class TestFilesystemTransport:
    def test_submission_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        job_id = new_job_id()
        store.drop_submission(spec(priority="smoke"), job_id)
        taken = store.take_submissions()
        assert len(taken) == 1
        assert taken[0]["id"] == job_id
        assert taken[0]["spec"]["priority"] == "smoke"
        assert store.take_submissions() == []  # inbox drained

    def test_corrupt_submission_is_skipped_not_fatal(self, tmp_path):
        store = JobStore(tmp_path)
        (store.inbox_dir / "bad.json").write_text("{not json")
        good = new_job_id()
        store.drop_submission(spec(), good)
        taken = store.take_submissions()
        assert [t["id"] for t in taken] == [good]

    def test_cancel_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        store.drop_cancel("job-a")
        store.drop_cancel("job-b")
        assert sorted(store.take_cancels()) == ["job-a", "job-b"]
        assert store.take_cancels() == []


class TestRecovery:
    def test_recover_returns_only_resumable_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        states = {
            JobState.QUEUED: new_job_id(),
            JobState.RUNNING: new_job_id(),
            JobState.DONE: new_job_id(),
            JobState.CANCELLED: new_job_id(),
        }
        for state, job_id in states.items():
            record = JobRecord(id=job_id, spec=spec())
            if state is not JobState.QUEUED:
                record.transition(JobState.RUNNING)
            if state.terminal:
                record.transition(state)
            store.create(record)
        resumable = {r.id for r in store.recover()}
        assert resumable == {states[JobState.QUEUED],
                             states[JobState.RUNNING]}

    def test_cleanup_job_deletes_checkpoint(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord(id=new_job_id(), spec=spec())
        store.create(record)
        store.checkpoint_path(record.id).write_text(
            json.dumps({"format": 1, "state": {}}))
        store.cleanup_job(record.id)
        assert not store.checkpoint_path(record.id).exists()

    def test_stale_checkpoints_reported_for_terminal_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        record = JobRecord(id=new_job_id(), spec=spec())
        record.transition(JobState.RUNNING)
        record.transition(JobState.DONE)
        store.create(record)
        assert store.stale_checkpoints() == []
        store.checkpoint_path(record.id).write_text("{}")
        assert store.stale_checkpoints() == [
            store.checkpoint_path(record.id)]

    def test_sweep_terminal_jobs_by_age(self, tmp_path):
        store = JobStore(tmp_path)
        old = JobRecord(id=new_job_id(), spec=spec())
        old.transition(JobState.RUNNING)
        old.transition(JobState.DONE)
        old.finished_at = 100.0
        store.create(old)
        fresh = JobRecord(id=new_job_id(), spec=spec())
        fresh.transition(JobState.RUNNING)
        fresh.transition(JobState.DONE)
        fresh.finished_at = 950.0
        store.create(fresh)
        active = JobRecord(id=new_job_id(), spec=spec())
        store.create(active)
        removed = store.sweep_terminal_jobs(500.0, now=1000.0)
        assert removed == [old.id]
        assert not store.exists(old.id)
        assert store.exists(fresh.id)
        assert store.exists(active.id)
