"""Transports and server behavior: filesystem client, HTTP client,
cancellation, failure isolation, rate limiting, event streams."""

import json
import time

import pytest

from repro.service import (
    CheckServer,
    JobSpec,
    JobState,
    RateLimitedError,
)
from repro.service.client import (
    FilesystemClient,
    HttpClient,
    ServiceClientError,
    make_client,
)
from repro.service.http_api import ServiceHttpServer

CLEAN = dict(program="repro.workloads.dining:dining_philosophers",
             factory_args=["2"], config={"strategy": "dfs"})
SLOW = dict(program="repro.workloads.wsq:work_stealing_queue",
            factory_args=["1", "1"],
            config={"strategy": "dfs", "max_executions": 100_000})


@pytest.fixture
def server(tmp_path):
    instance = CheckServer(tmp_path / "svc", fleet=2,
                           quantum_executions=15, poll_interval=0.05)
    instance.start()
    yield instance
    instance.stop()


class TestFilesystemTransport:
    def test_submit_wait_result(self, server):
        client = FilesystemClient(server.store.root)
        job_id = client.submit(JobSpec(**CLEAN))
        final = client.wait(job_id, timeout=60)
        assert final["state"] == "done"
        assert final["verdict"] == "pass"
        result = client.result(job_id)
        assert result["executions"] == 42
        assert job_id in [r["id"] for r in client.list_jobs()]

    def test_cancel_through_inbox(self, server):
        client = FilesystemClient(server.store.root)
        job_id = client.submit(JobSpec(**SLOW, priority="bulk"))
        # Wait for admission + some progress, then cancel.
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            try:
                if client.status(job_id)["executions"] > 0:
                    break
            except KeyError:
                pass
            time.sleep(0.05)
        client.cancel(job_id)
        final = client.wait(job_id, timeout=60)
        assert final["state"] == "cancelled"
        # Cancelled jobs leave no resume state behind.
        assert not server.store.checkpoint_path(job_id).exists()

    def test_invalid_submission_becomes_failed_record(self, server):
        client = FilesystemClient(server.store.root)
        store = client.store
        bad = JobSpec(program="repro.workloads.dining:dining_philosophers",
                      priority="not-a-priority")
        job_id = "job-bad-priority"
        store.drop_submission(bad, job_id)
        final = client.wait(job_id, timeout=30)
        assert final["state"] == "failed"
        assert "priority" in final["error"]

    def test_unresolvable_program_fails_job(self, server):
        client = FilesystemClient(server.store.root)
        job_id = client.submit(JobSpec(
            program="repro.workloads.nothing:missing",
            config={"strategy": "dfs"}))
        final = client.wait(job_id, timeout=30)
        assert final["state"] == "failed"
        assert "cannot import" in final["error"]
        # Infrastructure failure is isolated: the server keeps serving.
        ok = client.submit(JobSpec(**CLEAN))
        assert client.wait(ok, timeout=60)["verdict"] == "pass"

    def test_crashing_factory_fails_job(self, server):
        client = FilesystemClient(server.store.root)
        job_id = client.submit(JobSpec(
            program="repro.workloads.dining:dining_philosophers",
            factory_args=["-3"],  # ValueError inside the factory
            config={"strategy": "dfs"}))
        final = client.wait(job_id, timeout=30)
        assert final["state"] == "failed"

    def test_watch_streams_lifecycle_events(self, server):
        client = FilesystemClient(server.store.root)
        job_id = client.submit(JobSpec(**CLEAN))
        events = list(client.watch(job_id, timeout=60))
        kinds = {e["type"] for e in events}
        assert "job.submitted" in kinds
        assert "job.state" in kinds
        assert "job.quantum" in kinds
        assert "exploration.finished" in kinds
        # lifecycle stream keeps the tail light: no per-decision spam.
        assert "scheduling.decision" not in kinds
        states = [e["state"] for e in events if e["type"] == "job.state"]
        assert states[-1] == "done"


class TestHttpTransport:
    @pytest.fixture
    def http(self, server):
        facade = ServiceHttpServer(server, port=0)
        facade.start()
        yield facade
        facade.stop()

    def test_submit_status_result_cancel(self, server, http):
        client = HttpClient(http.url)
        job_id = client.submit(JobSpec(**CLEAN, priority="smoke"))
        final = client.wait(job_id, timeout=60)
        assert final["state"] == "done"
        assert client.result(job_id)["verdict"] == "pass"
        assert any(r["id"] == job_id for r in client.list_jobs())

        slow = client.submit(JobSpec(**SLOW, priority="bulk"))
        client.cancel(slow)
        assert client.wait(slow, timeout=60)["state"] == "cancelled"

    def test_watch_over_http(self, server, http):
        client = HttpClient(http.url)
        job_id = client.submit(JobSpec(**CLEAN))
        events = list(client.watch(job_id, timeout=60))
        assert {e["type"] for e in events} >= {"job.submitted",
                                               "job.state"}

    def test_unknown_job_is_404(self, server, http):
        client = HttpClient(http.url)
        with pytest.raises(KeyError):
            client.status("job-does-not-exist")
        assert client.result("job-does-not-exist") is None

    def test_bad_spec_is_400(self, server, http):
        client = HttpClient(http.url)
        with pytest.raises(ServiceClientError, match="400"):
            client._request("POST", "/v1/jobs",
                            {"spec": {"program": "no-colon"}})

    def test_health_and_metrics(self, server, http):
        client = HttpClient(http.url)
        health = client.health()
        assert health["fleet"] == 2
        assert "starvation" in health
        metrics = client._request("GET", "/metrics")
        assert "counters" in metrics

    def test_unreachable_server_raises_client_error(self):
        client = HttpClient("http://127.0.0.1:9", request_timeout=0.5)
        with pytest.raises(ServiceClientError, match="cannot reach"):
            client.list_jobs()


class TestRateLimiting:
    def test_http_submit_gets_429(self, tmp_path):
        server = CheckServer(tmp_path / "svc", fleet=1,
                             quantum_executions=10,
                             submit_rate=0.001, submit_burst=2.0)
        server.start()
        http = ServiceHttpServer(server, port=0)
        http.start()
        try:
            client = HttpClient(http.url)
            spec = JobSpec(**SLOW, priority="bulk", client="greedy")
            client.submit(spec)
            client.submit(spec)
            with pytest.raises(RateLimitedError):
                client.submit(spec)
            # A different client has its own bucket.
            other = JobSpec(**CLEAN, client="patient")
            client.submit(other)
        finally:
            http.stop()
            server.stop()

    def test_inprocess_submit_raises(self, tmp_path):
        server = CheckServer(tmp_path / "svc", submit_rate=0.001,
                             submit_burst=1.0)
        server.submit(JobSpec(**CLEAN, client="c"))
        with pytest.raises(RateLimitedError):
            server.submit(JobSpec(**CLEAN, client="c"))
        server.stop()

    def test_per_client_cap_defers_not_rejects(self, tmp_path):
        server = CheckServer(tmp_path / "svc", fleet=1,
                             quantum_executions=15,
                             max_active_per_client=1, poll_interval=0.05)
        a = server.submit(JobSpec(**CLEAN, client="solo"))
        b = server.submit(JobSpec(**CLEAN, client="solo"))
        server.start()
        try:
            assert server.wait(a.id, timeout=60).verdict == "pass"
            assert server.wait(b.id, timeout=60).verdict == "pass"
        finally:
            server.stop()
        counters = server.metrics.to_dict()["counters"]
        assert counters.get("scheduler.deferred", 0) == 1


class TestMakeClient:
    def test_requires_exactly_one_coordinate(self, tmp_path):
        with pytest.raises(ValueError):
            make_client()
        with pytest.raises(ValueError):
            make_client(data_dir=tmp_path, url="http://x")
        assert isinstance(make_client(data_dir=tmp_path),
                          FilesystemClient)
        assert isinstance(make_client(url="http://localhost:1"),
                          HttpClient)


class TestServerHousekeeping:
    def test_metrics_dumped_to_data_dir(self, tmp_path):
        server = CheckServer(tmp_path / "svc", fleet=1,
                             quantum_executions=15)
        record = server.submit(JobSpec(**CLEAN))
        server.run_until_idle(timeout=60)
        server.stop()
        payload = json.loads((server.store.root / "metrics.json")
                             .read_text())
        assert payload["counters"]["jobs.submitted"] == 1
        assert payload["counters"]["jobs.done"] == 1
        assert payload["counters"].get("scheduler.starvation", 0) == 0
        assert server.job(record.id).state is JobState.DONE

    def test_no_leaked_checkpoints_after_batch(self, tmp_path):
        server = CheckServer(tmp_path / "svc", fleet=2,
                             quantum_executions=10)
        records = [server.submit(JobSpec(**CLEAN, priority=p))
                   for p in ("smoke", "default", "bulk")]
        server.run_until_idle(timeout=120)
        server.stop()
        for record in records:
            assert server.job(record.id).state is JobState.DONE
        assert server.store.stale_checkpoints() == []

    def test_retention_sweeps_old_terminal_jobs(self, tmp_path):
        server = CheckServer(tmp_path / "svc", fleet=1,
                             quantum_executions=15,
                             retention_seconds=0.0, poll_interval=0.05)
        record = server.submit(JobSpec(**CLEAN))
        server.run_until_idle(timeout=60)
        deadline = time.monotonic() + 10
        while (server.store.exists(record.id)
               and time.monotonic() < deadline):
            time.sleep(0.05)
        server.stop()
        assert not server.store.exists(record.id)
