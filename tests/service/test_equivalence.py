"""Service-vs-direct equivalence: quantum slicing must not change results.

The service runs every job as a sequence of checkpoint/resume quanta.
Because resume reproduces the uninterrupted search exactly (PR2's
guarantee, tests/resilience/test_resume.py), a sliced job's final
totals, verdict, and first-violation index must be bit-identical to a
direct ``Checker.run()`` with the same config — for every strategy, and
even when the server is killed and restarted mid-job.
"""

import pytest

from repro.checker import Checker
from repro.service import CheckServer, JobSpec, JobState
from repro.workloads.dining import dining_philosophers
from repro.workloads.wsq import work_stealing_queue

#: (strategy, extra config) triples exercised through the service.  The
#: quantum (well below each search's total) forces many resume cycles.
STRATEGIES = [
    ("dfs", {}),
    ("bfs", {}),
    ("icb", {}),
    ("por", {}),
    ("random", {"random_executions": 60, "seed": 11}),
]


def run_direct(program, config):
    # The service always runs jobs with a quarantine dir (crash capture
    # on); mirror that so the executor configs match exactly.
    import tempfile

    return Checker(program, quarantine_dir=tempfile.mkdtemp(),
                   **config).run()


def totals(exploration):
    return (exploration.executions, exploration.transitions,
            exploration.complete, exploration.first_violation_execution)


@pytest.mark.parametrize("strategy,extra", STRATEGIES,
                         ids=[s for s, _ in STRATEGIES])
class TestSlicedEqualsDirect:
    def test_clean_program(self, strategy, extra, tmp_path):
        config = {"strategy": strategy, **extra}
        direct = run_direct(dining_philosophers(2), config)

        server = CheckServer(tmp_path / "svc", fleet=2,
                             quantum_executions=7)
        record = server.submit(JobSpec(
            program="repro.workloads.dining:dining_philosophers",
            factory_args=["2"], config=config))
        try:
            server.run_until_idle(timeout=120)
        finally:
            server.stop()

        final = server.job(record.id)
        result = server.result(record.id)
        assert final.state is JobState.DONE
        assert result["verdict"] == ("pass" if direct.ok else "fail")
        assert final.quanta > 1, "quantum did not slice the search"
        assert (result["executions"], result["transitions"],
                result["complete"],
                result["first_violation_execution"]) == \
            totals(direct.exploration)

    def test_buggy_program(self, strategy, extra, tmp_path):
        config = {"strategy": strategy, "max_executions": 400, **extra}
        direct = run_direct(work_stealing_queue(1, 1, 1), config)

        server = CheckServer(tmp_path / "svc", fleet=2,
                             quantum_executions=9)
        record = server.submit(JobSpec(
            program="repro.workloads.wsq:work_stealing_queue",
            factory_args=["1", "1", "1"], config=config))
        try:
            server.run_until_idle(timeout=240)
        finally:
            server.stop()

        result = server.result(record.id)
        assert server.job(record.id).state is JobState.DONE
        assert result["verdict"] == ("pass" if direct.ok else "fail")
        assert (result["executions"], result["transitions"],
                result["complete"],
                result["first_violation_execution"]) == \
            totals(direct.exploration)
        # A found counterexample ships as a replayable repro artifact.
        if direct.violation is not None:
            assert result["counterexample_schedule"] == \
                direct.violation.schedule
            assert server.store.repro_path(record.id).exists()


class TestRestartMidJob:
    """Kill the server between quanta; a fresh one must finish the job
    with totals identical to a never-interrupted direct run."""

    @pytest.mark.parametrize("strategy", ["dfs", "bfs", "icb"])
    def test_restart_preserves_totals(self, strategy, tmp_path):
        config = {"strategy": strategy}
        direct = run_direct(dining_philosophers(2), config)

        data_dir = tmp_path / "svc"
        first = CheckServer(data_dir, fleet=1, quantum_executions=5)
        record = first.submit(JobSpec(
            program="repro.workloads.dining:dining_philosophers",
            factory_args=["2"], config=config))
        # Let it make partial progress, then kill it mid-job.
        first.start()
        deadline_progress = False
        import time
        for _ in range(200):
            time.sleep(0.05)
            snapshot = first.job(record.id)
            if snapshot.executions > 0:
                deadline_progress = True
                break
        first.stop()
        assert deadline_progress, "job never started before shutdown"

        durable = first.store.load(record.id)
        if durable.state.terminal:
            pytest.skip("search finished before the kill; nothing to "
                        "resume (timing)")
        assert durable.state in (JobState.QUEUED, JobState.RUNNING)

        second = CheckServer(data_dir, fleet=1, quantum_executions=5)
        try:
            second.run_until_idle(timeout=120)
        finally:
            second.stop()

        result = second.result(record.id)
        assert second.job(record.id).state is JobState.DONE
        assert (result["executions"], result["transitions"],
                result["complete"],
                result["first_violation_execution"]) == \
            totals(direct.exploration)
        assert result["verdict"] == ("pass" if direct.ok else "fail")
        # The resumed server must not leak the checkpoint afterwards.
        assert not second.store.checkpoint_path(record.id).exists()
        assert second.store.stale_checkpoints() == []

    def test_restart_completes_queued_cancel(self, tmp_path):
        """A cancel that lands just before a crash finalizes on reboot."""
        data_dir = tmp_path / "svc"
        first = CheckServer(data_dir, fleet=1, quantum_executions=5)
        record = first.submit(JobSpec(
            program="repro.workloads.dining:dining_philosophers",
            factory_args=["2"], config={"strategy": "dfs"}))
        # Simulate "cancel recorded, server died before finalizing":
        # flip the durable flag without running the cancel path.
        durable = first.store.load(record.id)
        durable.cancel_requested = True
        first.store.save(durable)
        first.scheduler.close()  # never started; just drop it

        second = CheckServer(data_dir, fleet=1, quantum_executions=5)
        second.stop()
        final = second.store.load(record.id)
        assert final.state is JobState.CANCELLED
