"""Service hardening: unwritable stores, corrupt records, orphan jobs.

The durable-state-is-the-authority invariant (service/store.py) only
holds if the server fails loudly when it cannot write, shrugs off
records another process tore, and re-adopts jobs a dead server left
``running``.
"""

import json
import os
import stat
import sys

import pytest

from repro.service import CheckServer, JobSpec, JobState
from repro.service.store import JobStore

SPEC = JobSpec(program="repro.workloads.dining:dining_philosophers",
               factory_args=["2"], config={"strategy": "dfs"})


def _read_only(path):
    path.chmod(stat.S_IRUSR | stat.S_IXUSR)


def _writable(path):
    path.chmod(stat.S_IRWXU)


class TestWritabilityProbe:
    def test_verify_writable_passes_on_a_normal_dir(self, tmp_path):
        JobStore(tmp_path / "svc").verify_writable()

    def test_verify_writable_raises_on_read_only_dir(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores permission bits")
        store = JobStore(tmp_path / "svc")
        _read_only(store.jobs_dir)
        try:
            with pytest.raises(OSError):
                store.verify_writable()
        finally:
            _writable(store.jobs_dir)

    def test_probe_leaves_no_droppings(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        store.verify_writable()
        assert list(store.jobs_dir.iterdir()) == []

    def test_server_boot_fails_loudly_on_unwritable_store(self, tmp_path):
        if os.geteuid() == 0:
            pytest.skip("root ignores permission bits")
        store = JobStore(tmp_path / "svc")  # creates the layout
        _read_only(store.jobs_dir)
        try:
            with pytest.raises(OSError):
                CheckServer(tmp_path / "svc", fleet=1)
        finally:
            _writable(store.jobs_dir)

    def test_boot_fails_when_data_dir_is_a_file(self, tmp_path):
        """Root-proof variant: a path component that is a regular file
        blocks the store layout for any uid."""
        (tmp_path / "blocker").write_text("")
        with pytest.raises(OSError):
            CheckServer(tmp_path / "blocker" / "svc", fleet=1)

    def test_serve_cli_exits_nonzero_on_unwritable_store(self, tmp_path):
        import subprocess

        (tmp_path / "blocker").write_text("")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "serve",
             "--data-dir", str(tmp_path / "blocker" / "svc"),
             "--idle-exit", "1"],
            capture_output=True, text=True, timeout=60,
            env={**os.environ,
                 "PYTHONPATH": os.environ.get("PYTHONPATH", "src")})
        assert proc.returncode == 2
        assert "not writable" in proc.stderr


class TestCorruptRecordQuarantine:
    def test_corrupt_job_json_is_quarantined_and_skipped(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        server = CheckServer(tmp_path / "svc", fleet=1)
        good = server.submit(SPEC)
        server.stop()

        bad_dir = store.jobs_dir / "zzzz-corrupt"
        bad_dir.mkdir()
        (bad_dir / "job.json").write_text('{"id": "zzzz-cor')  # torn

        records = list(store.jobs())
        assert [r.id for r in records] == [good.id]
        assert not (bad_dir / "job.json").exists()
        assert (bad_dir / "job.json.corrupt").read_text().startswith('{"id"')

    def test_server_boots_around_a_corrupt_record(self, tmp_path):
        store = JobStore(tmp_path / "svc")
        bad_dir = store.jobs_dir / "zzzz-corrupt"
        bad_dir.mkdir()
        (bad_dir / "job.json").write_text("not json at all")

        server = CheckServer(tmp_path / "svc", fleet=1)
        try:
            record = server.submit(SPEC)
            server.run_until_idle(timeout=120)
            assert server.job(record.id).state is JobState.DONE
        finally:
            server.stop()


class TestOrphanRecovery:
    def _orphan(self, tmp_path, state):
        """A job a dead server left behind in ``state``."""
        server = CheckServer(tmp_path / "svc", fleet=1)
        record = server.submit(SPEC)
        server.stop()
        store = JobStore(tmp_path / "svc")
        payload = json.loads(store.record_path(record.id).read_text())
        payload["state"] = state
        store.record_path(record.id).write_text(json.dumps(payload))
        return record.id

    @pytest.mark.parametrize("state", ["queued", "running"])
    def test_orphaned_job_is_requeued_and_finished_on_boot(
            self, tmp_path, state):
        job_id = self._orphan(tmp_path, state)
        server = CheckServer(tmp_path / "svc", fleet=1)
        try:
            server.run_until_idle(timeout=120)
            record = server.job(job_id)
            assert record.state is JobState.DONE
            assert record.verdict == "pass"
        finally:
            server.stop()
        # The durable record agrees: nothing is stuck in ``running``.
        reloaded = JobStore(tmp_path / "svc").load(job_id)
        assert reloaded.state is JobState.DONE
