"""Checkpoint serialization and the atomic store."""

import json
import random

import pytest

from repro.engine.results import (
    Decision,
    DivergenceKind,
    DivergenceReport,
    ExecutionResult,
    ExplorationResult,
    Outcome,
)
from repro.resilience.checkpoint import (
    FORMAT_VERSION,
    CheckpointStore,
    exploration_from_state,
    exploration_to_state,
    freeze_rng,
    load_checkpoint,
    record_from_state,
    record_to_state,
    thaw_rng,
)
from repro.runtime.errors import AssertionViolation, TaskCrash


class TestRngRoundTrip:
    def test_resumed_rng_continues_the_same_stream(self):
        rng = random.Random(42)
        rng.random()  # advance past the seed state
        frozen = freeze_rng(rng)
        expected = [rng.random() for _ in range(10)]

        fresh = random.Random()
        thaw_rng(fresh, frozen)
        assert [fresh.random() for _ in range(10)] == expected

    def test_frozen_state_is_json_serializable(self):
        frozen = freeze_rng(random.Random(7))
        assert json.loads(json.dumps(frozen)) == frozen


class TestRecordRoundTrip:
    def test_violation_record(self):
        record = ExecutionResult(
            outcome=Outcome.VIOLATION,
            decisions=[Decision("thread", 1, 3, None),
                       Decision("data", 0, 2, None)],
            steps=12,
            preemptions=2,
            violation=AssertionViolation("x broke"),
        )
        restored = record_from_state(record_to_state(record))
        assert restored.outcome is Outcome.VIOLATION
        assert restored.schedule == [1, 0]
        assert [d.options for d in restored.decisions] == [3, 2]
        assert isinstance(restored.violation, AssertionViolation)
        assert "x broke" in str(restored.violation)

    def test_divergence_and_crash_fields(self):
        record = ExecutionResult(
            outcome=Outcome.CRASHED,
            decisions=[],
            steps=3,
            crash=TaskCrash("thread 'w' crashed"),
            divergence=DivergenceReport(
                kind=DivergenceKind.LIVELOCK, culprits=("a", "b"),
                window=64, detail="spin"),
            abort_reason=None,
        )
        restored = record_from_state(record_to_state(record))
        assert isinstance(restored.crash, TaskCrash)
        assert restored.divergence.kind is DivergenceKind.LIVELOCK
        assert restored.divergence.culprits == ("a", "b")

    def test_state_is_json_serializable(self):
        record = ExecutionResult(outcome=Outcome.TERMINATED,
                                 decisions=[Decision("thread", 0, 2, None)],
                                 steps=5)
        state = record_to_state(record)
        assert json.loads(json.dumps(state)) == state


class TestExplorationRoundTrip:
    def test_counts_and_outcomes_survive(self):
        result = ExplorationResult(program_name="p", policy_name="fair",
                                   strategy_name="dfs", executions=17,
                                   transitions=230)
        result.outcomes[Outcome.TERMINATED] = 15
        result.outcomes[Outcome.DEADLOCK] = 2
        result.stop_reason = "max-executions"
        result.limit_hit = True
        restored = exploration_from_state(exploration_to_state(result))
        assert restored.executions == 17
        assert restored.transitions == 230
        assert restored.outcomes[Outcome.TERMINATED] == 15
        assert restored.outcomes[Outcome.DEADLOCK] == 2
        assert restored.stop_reason == "max-executions"
        assert restored.limit_hit


class TestCheckpointStore:
    def payload(self):
        return {"program": "p", "strategy": "dfs",
                "state": {"strategy": "dfs", "frontier": {"guide": [1, 0]}}}

    def test_save_load_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path / "search.ckpt")
        path = store.save(self.payload())
        loaded = load_checkpoint(path)
        assert loaded["program"] == "p"
        assert loaded["state"]["frontier"] == {"guide": [1, 0]}
        assert loaded["format"] == FORMAT_VERSION

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        store = CheckpointStore(tmp_path / "search.ckpt")
        store.save(self.payload())
        store.save(self.payload())  # overwrite goes through the same dance
        # The overwrite rotates the last snapshot to .prev (recovery
        # fodder); the only other file is the checkpoint itself — no
        # .tmp survives a completed save.
        assert sorted(p.name for p in tmp_path.iterdir()) == [
            "search.ckpt", "search.ckpt.prev"]

    def test_creates_missing_parent_directories(self, tmp_path):
        store = CheckpointStore(tmp_path / "deep" / "nested" / "s.ckpt")
        path = store.save(self.payload())
        assert path.exists()

    def test_truncated_file_raises_value_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "search.ckpt")
        path = store.save(self.payload())
        full = path.read_text()
        path.write_text(full[: len(full) // 2])  # simulate a torn write
        with pytest.raises(ValueError, match="truncated or corrupt"):
            store.load()

    def test_wrong_format_version_rejected(self, tmp_path):
        path = tmp_path / "search.ckpt"
        path.write_text(json.dumps({"format": 999, "state": {}}))
        with pytest.raises(ValueError, match="unsupported checkpoint format"):
            load_checkpoint(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "search.ckpt"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="not a JSON object"):
            load_checkpoint(path)

    def test_missing_strategy_state_rejected(self, tmp_path):
        path = tmp_path / "search.ckpt"
        path.write_text(json.dumps({"format": FORMAT_VERSION}))
        with pytest.raises(ValueError, match="no strategy state"):
            load_checkpoint(path)

    def test_open_sweeps_stale_tmp_from_killed_write(self, tmp_path):
        # A run killed between serializing and os.replace leaves
        # search.ckpt.tmp behind; the next open must clean it up without
        # touching the (valid) checkpoint itself.
        store = CheckpointStore(tmp_path / "search.ckpt")
        path = store.save(self.payload())
        stale = tmp_path / "search.ckpt.tmp"
        stale.write_text("{half a snapsho")
        reopened = CheckpointStore(tmp_path / "search.ckpt")
        assert not stale.exists()
        assert reopened.load()["program"] == "p"
        assert sorted(p.name for p in tmp_path.iterdir()) == ["search.ckpt"]
        assert path.exists()

    def test_open_without_checkpoint_still_sweeps_tmp(self, tmp_path):
        # Repeated interrupted runs can orphan a tmp file even when no
        # checkpoint was ever completed.
        stale = tmp_path / "fresh.ckpt.tmp"
        stale.write_text("")
        store = CheckpointStore(tmp_path / "fresh.ckpt")
        assert not stale.exists()
        assert not store.exists()
