"""CheckpointStore lifecycle: delete, list, sweep_stale.

The checking service creates one checkpoint per job and must retire it
when the job finalizes; these operations are the primitives the service
garbage collection leans on.
"""

import json
import os
import time

from repro.resilience.checkpoint import FORMAT_VERSION, CheckpointStore


def write_checkpoint(path, *, saved_at=None, state=None):
    store = CheckpointStore(path)
    # Mirror ResilienceController.flush_checkpoint: the strategy state
    # rides under the "state" key of the checkpoint document.
    store.save({"state": state or {"strategy": "dfs", "frontier": {}}})
    if saved_at is not None:
        payload = json.loads(path.read_text())
        payload["saved_at"] = saved_at
        path.write_text(json.dumps(payload))
        os.utime(path, (saved_at, saved_at))
    return store


class TestDelete:
    def test_delete_removes_checkpoint(self, tmp_path):
        path = tmp_path / "search.ckpt"
        store = write_checkpoint(path)
        assert path.exists()
        assert store.delete() is True
        assert not path.exists()

    def test_delete_missing_returns_false(self, tmp_path):
        assert CheckpointStore(tmp_path / "none.ckpt").delete() is False

    def test_delete_cleans_tmp_sibling(self, tmp_path):
        path = tmp_path / "search.ckpt"
        write_checkpoint(path)
        tmp_sibling = path.with_name(path.name + ".tmp")
        tmp_sibling.write_text("half a checkpoint")
        CheckpointStore(path).delete()
        assert not path.exists()
        assert not tmp_sibling.exists()


class TestList:
    def test_lists_only_valid_checkpoints(self, tmp_path):
        write_checkpoint(tmp_path / "a.ckpt")
        write_checkpoint(tmp_path / "b.ckpt")
        (tmp_path / "junk.ckpt").write_text("{not json")
        (tmp_path / "wrong-shape.ckpt").write_text(json.dumps({"x": 1}))
        (tmp_path / "wrong-format.ckpt").write_text(
            json.dumps({"format": FORMAT_VERSION + 999, "state": {}}))
        (tmp_path / "c.ckpt.tmp").write_text("mid write")
        found = CheckpointStore.list(tmp_path)
        assert [p.name for p in found] == ["a.ckpt", "b.ckpt"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert CheckpointStore.list(tmp_path / "nowhere") == []

    def test_ignores_subdirectories(self, tmp_path):
        (tmp_path / "subdir").mkdir()
        write_checkpoint(tmp_path / "a.ckpt")
        assert len(CheckpointStore.list(tmp_path)) == 1


class TestSweepStale:
    def test_sweeps_only_old_checkpoints(self, tmp_path):
        now = time.time()
        write_checkpoint(tmp_path / "old.ckpt", saved_at=now - 1_000)
        write_checkpoint(tmp_path / "fresh.ckpt", saved_at=now - 10)
        removed = CheckpointStore.sweep_stale(tmp_path, max_age=500,
                                              now=now)
        assert [p.name for p in removed] == ["old.ckpt"]
        assert not (tmp_path / "old.ckpt").exists()
        assert (tmp_path / "fresh.ckpt").exists()

    def test_never_touches_foreign_files(self, tmp_path):
        now = time.time()
        foreign = tmp_path / "notes.txt"
        foreign.write_text("do not delete")
        os.utime(foreign, (now - 9_999, now - 9_999))
        removed = CheckpointStore.sweep_stale(tmp_path, max_age=1,
                                              now=now)
        assert removed == []
        assert foreign.exists()

    def test_mtime_fallback_when_saved_at_missing(self, tmp_path):
        now = time.time()
        path = tmp_path / "legacy.ckpt"
        path.write_text(json.dumps({"format": FORMAT_VERSION,
                                    "state": {"strategy": "dfs"}}))
        os.utime(path, (now - 1_000, now - 1_000))
        removed = CheckpointStore.sweep_stale(tmp_path, max_age=500,
                                              now=now)
        assert removed == [path]

    def test_sweep_of_missing_directory_is_noop(self, tmp_path):
        assert CheckpointStore.sweep_stale(tmp_path / "gone",
                                           max_age=1) == []


class TestRoundTripAfterLifecycle:
    def test_save_load_delete_save_again(self, tmp_path):
        path = tmp_path / "search.ckpt"
        store = CheckpointStore(path)
        store.save({"state": {"strategy": "dfs",
                              "frontier": {"depth": 3}}})
        assert store.load()["state"]["frontier"]["depth"] == 3
        store.delete()
        assert not store.exists()
        store.save({"state": {"strategy": "bfs", "frontier": {}}})
        assert store.load()["state"]["strategy"] == "bfs"
