"""Execution watchdog: wall-clock budgets, hung threads, leaked threads."""

import threading

import pytest

from repro.core.policies import fair_policy
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.results import Outcome
from repro.engine.strategies import explore_dfs
from repro.obs import (
    CollectingSink,
    ExecutionAborted,
    Observer,
    ThreadLeaked,
)
from repro.resilience.watchdog import ExecutionWatchdog
from repro.runtime.errors import ExecutionHung
from repro.runtime.native import NativeProgram
from repro.runtime.program import VMProgram
from repro.sync import yield_now


def spin_forever():
    """One thread that yields in a loop — runs until somebody stops it."""
    def setup(env):
        def spinner():
            while True:
                yield from yield_now()

        env.spawn(spinner, name="spin")

    return VMProgram(setup, name="spin-forever")


def hung_native():
    """A controlled OS thread that blocks outside any scheduling point."""
    def setup(env):
        def stuck():
            threading.Event().wait()  # never returns, never traps

        env.spawn(stuck, name="stuck")

    return NativeProgram(setup, name="hung-native")


class TestExecutionWatchdog:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            ExecutionWatchdog(0)

    def test_fresh_watchdog_is_not_expired(self):
        dog = ExecutionWatchdog(60.0)
        assert not dog.expired()
        assert dog.remaining() > 0

    def test_expires_after_the_budget(self):
        dog = ExecutionWatchdog(1e-6).start()
        while not dog.expired():
            pass
        assert dog.remaining() == 0.0

    def test_describe_names_the_budget(self):
        assert "2.5s" in ExecutionWatchdog(2.5).describe()


class TestExecutorBudget:
    def test_unbounded_spin_is_aborted(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        result = run_execution(
            spin_forever(), fair_policy()(), GuidedChooser(()),
            ExecutorConfig(depth_bound=None,
                           execution_budget_seconds=0.05),
            observer=observer,
        )
        assert result.outcome is Outcome.ABORTED
        assert "wall-clock budget" in result.abort_reason
        events = sink.of_type(ExecutionAborted)
        assert len(events) == 1
        assert observer.metrics.counter("executions.aborted").value == 1

    def test_fast_execution_is_unaffected_by_the_budget(self):
        def setup(env):
            def quick():
                yield from yield_now()

            env.spawn(quick, name="q")

        result = run_execution(
            VMProgram(setup, name="quick"), fair_policy()(),
            GuidedChooser(()),
            ExecutorConfig(execution_budget_seconds=30.0),
        )
        assert result.outcome is Outcome.TERMINATED
        assert result.abort_reason is None

    def test_search_counts_aborts_and_continues(self):
        result = explore_dfs(
            spin_forever(), fair_policy(),
            ExecutorConfig(depth_bound=None,
                           execution_budget_seconds=0.05),
        )
        # The single (one-option) schedule aborts; the search still
        # drains its frontier and reports the abort in the totals.
        assert result.aborted_executions == 1
        assert result.outcomes[Outcome.ABORTED] == 1
        assert result.stop_reason is None


class TestNativeHang:
    def test_hung_thread_aborts_and_reports_the_leak(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        result = run_execution(
            hung_native(), fair_policy()(), GuidedChooser(()),
            ExecutorConfig(depth_bound=None,
                           execution_budget_seconds=0.2),
            observer=observer,
        )
        assert result.outcome is Outcome.ABORTED
        assert "did not reach its next scheduling point" in result.abort_reason
        leaks = sink.of_type(ThreadLeaked)
        assert len(leaks) == 1
        assert leaks[0].threads == ("stuck",)
        assert observer.metrics.counter("threads.leaked").value == 1

    def test_resume_with_timeout_raises_execution_hung(self):
        instance = hung_native().instantiate()
        try:
            (tid,) = instance.thread_ids()
            instance.step_timeout = 0.1
            with pytest.raises(ExecutionHung, match="stuck"):
                instance.step(tid)
            assert instance.task(tid).hung
        finally:
            instance.close()
        assert instance.leaked_threads == ("stuck",)
