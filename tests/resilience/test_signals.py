"""Graceful-stop semantics (flag, escalation, handler install/restore)."""

import signal
import threading

import pytest

from repro.resilience import GracefulStop, ResilienceController, ResilienceOptions


class TestGracefulStop:
    def test_programmatic_request_sets_the_flag(self):
        stop = GracefulStop(install=False)
        assert not stop.requested
        stop.request("test")
        assert stop.requested
        assert stop.signal_name == "test"

    def test_first_signal_sets_flag_second_sigint_escalates(self):
        stop = GracefulStop(install=False)
        stop._handle(signal.SIGINT, None)
        assert stop.requested
        assert stop.signal_name == "SIGINT"
        with pytest.raises(KeyboardInterrupt):
            stop._handle(signal.SIGINT, None)

    def test_sigterm_after_sigterm_does_not_escalate(self):
        stop = GracefulStop(install=False)
        stop._handle(signal.SIGTERM, None)
        stop._handle(signal.SIGTERM, None)  # repeat is idempotent
        assert stop.signal_name == "SIGTERM"

    def test_context_manager_installs_and_restores_handlers(self):
        before = signal.getsignal(signal.SIGINT)
        with GracefulStop() as stop:
            assert signal.getsignal(signal.SIGINT) == stop._handle
            assert signal.getsignal(signal.SIGTERM) == stop._handle
        assert signal.getsignal(signal.SIGINT) == before

    def test_degrades_to_plain_flag_off_the_main_thread(self):
        before = signal.getsignal(signal.SIGINT)
        seen = {}

        def worker():
            with GracefulStop() as stop:
                seen["handler"] = signal.getsignal(signal.SIGINT)
                stop.request()
                seen["requested"] = stop.requested

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
        assert seen["handler"] == before  # nothing installed
        assert seen["requested"]


class TestControllerStop:
    def test_stop_requested_maps_to_interrupted(self):
        controller = ResilienceController(ResilienceOptions())
        assert controller.stop_requested() is None
        controller.request_stop("test")
        assert controller.stop_requested() == "interrupted"
        assert controller.stop_signal == "test"

    def test_attached_stop_is_observed(self):
        controller = ResilienceController(ResilienceOptions())
        stop = GracefulStop(install=False)
        controller.attach_stop(stop)
        assert controller.stop_requested() is None
        stop.request("SIGTERM")
        assert controller.stop_requested() == "interrupted"
