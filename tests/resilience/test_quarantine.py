"""Crash quarantine: crashing executions become findings, not fatalities."""

import pytest

from repro.checker import Checker
from repro.core.policies import fair_policy
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.persistence import load_schedule
from repro.engine.results import Outcome
from repro.obs import CollectingSink, CrashQuarantined, Observer
from repro.runtime.program import VMProgram
from repro.sync import SharedVar


def crashy_program():
    """Every interleaving crashes one thread with a plain RuntimeError."""
    def setup(env):
        x = SharedVar(0, name="x")

        def ok():
            yield from x.set(1)

        def bad():
            yield from x.get()
            raise RuntimeError("boom")

        env.spawn(ok, name="ok")
        env.spawn(bad, name="bad")

    return VMProgram(setup, name="crashy")


class TestExecutorCapture:
    def test_legacy_crash_is_a_violation(self):
        result = run_execution(crashy_program(), fair_policy()(),
                               GuidedChooser(()), ExecutorConfig())
        assert result.outcome is Outcome.VIOLATION
        assert "boom" in str(result.violation)

    def test_captured_crash_is_quarantined(self):
        result = run_execution(
            crashy_program(), fair_policy()(), GuidedChooser(()),
            ExecutorConfig(capture_crashes=True),
        )
        assert result.outcome is Outcome.CRASHED
        assert "boom" in str(result.crash)
        assert result.violation is None
        # The record still carries a replayable schedule.
        assert result.decisions


class TestCheckerQuarantine:
    def test_max_crashes_stops_the_search(self, tmp_path):
        quarantine = tmp_path / "quarantine"
        sink = CollectingSink()
        result = Checker(
            crashy_program(), max_crashes=3, quarantine_dir=str(quarantine),
            handle_signals=False, observer=Observer(sink=sink),
        ).run()
        exploration = result.exploration
        assert exploration.stop_reason == "max-crashes"
        assert exploration.outcomes[Outcome.CRASHED] == 3
        assert len(exploration.crashes) == 3
        assert not result.ok
        assert "quarantined crash" in result.report()

        saved = sorted(p.name for p in quarantine.iterdir())
        assert saved == ["crash-0000.json", "crash-0001.json",
                         "crash-0002.json"]
        payload = load_schedule(quarantine / "crash-0000.json")
        assert payload["schedule"] == exploration.crashes[0].schedule

        events = sink.of_type(CrashQuarantined)
        assert len(events) == 3
        assert all("boom" in e.message for e in events)
        assert events[0].path.endswith("crash-0000.json")

    def test_quarantine_dir_alone_enables_capture(self, tmp_path):
        quarantine = tmp_path / "q"
        result = Checker(crashy_program(), quarantine_dir=str(quarantine),
                         handle_signals=False).run()
        assert result.exploration.outcomes[Outcome.CRASHED] > 0
        assert any(quarantine.iterdir())

    def test_without_capture_a_crash_is_still_a_violation(self):
        result = Checker(crashy_program(), handle_signals=False).run()
        assert result.exploration.found_violation
        assert result.exploration.stop_reason == "violation"
        assert not result.exploration.crashes
