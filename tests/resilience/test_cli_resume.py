"""End-to-end resilience through the CLI: interrupt a search, resume it.

Two interruption styles are exercised on two workloads:

* a *real* SIGINT delivered to a subprocess mid-search (the operator
  pressing Ctrl-C), then ``--resume`` with a deterministic execution
  budget compared against an uninterrupted reference run;
* an in-process limit stop (``--max-executions``) followed by a resume
  that finishes the search.
"""

import os
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


def totals(output: str):
    match = re.search(r"executions=(\d+) transitions=(\d+)", output)
    assert match, f"no totals in output:\n{output}"
    return int(match.group(1)), int(match.group(2))


def run_cli(args, timeout=120):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=timeout, env=env,
    )


def sigint_then_resume(spec, prog_args, tmp_path, budget):
    """SIGINT a CLI search once a checkpoint exists; resume to ``budget``
    executions and compare with an uninterrupted budget-bounded run."""
    ckpt = str(tmp_path / "search.ckpt")
    base = ["check", spec, *prog_args, "--depth-bound", "500"]
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", *base,
         "--checkpoint", ckpt, "--checkpoint-interval", "10"],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True, env=env,
    )
    try:
        deadline = time.monotonic() + 60
        while not os.path.exists(ckpt):
            if proc.poll() is not None or time.monotonic() > deadline:
                out, err = proc.communicate(timeout=10)
                pytest.fail(f"search ended before any checkpoint:\n{out}\n{err}")
            time.sleep(0.01)
        proc.send_signal(signal.SIGINT)
        out, err = proc.communicate(timeout=60)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.communicate()
    assert proc.returncode == 130, f"stdout:\n{out}\nstderr:\n{err}"
    assert "interrupted" in out

    interrupted_execs, _ = totals(out)
    assert interrupted_execs < budget, (
        f"search ran past the test budget before the SIGINT landed "
        f"({interrupted_execs} >= {budget}); raise the budget")

    resumed = run_cli([*base, "--checkpoint", ckpt, "--resume",
                       "--max-executions", str(budget)])
    reference = run_cli([*base, "--max-executions", str(budget)])
    assert resumed.returncode == reference.returncode
    assert totals(resumed.stdout) == totals(reference.stdout)


@pytest.mark.slow
class TestSigintResume:
    def test_dining_philosophers(self, tmp_path):
        sigint_then_resume("repro.workloads.dining:dining_philosophers",
                           ["-a", "3"], tmp_path, budget=800)

    def test_work_stealing_queue(self, tmp_path):
        sigint_then_resume("repro.workloads.wsq:work_stealing_queue",
                           ["-a", "2"], tmp_path, budget=800)


class TestLimitStopResume:
    def test_limit_stop_then_resume_completes(self, tmp_path, capsys):
        ckpt = str(tmp_path / "search.ckpt")
        base = ["check", "repro.workloads.dining:dining_philosophers",
                "-a", "2", "--depth-bound", "300"]

        assert main([*base, "--checkpoint", ckpt, "--checkpoint-interval",
                     "5", "--max-executions", "10"]) == 0
        partial = capsys.readouterr().out
        assert totals(partial)[0] == 10

        assert main([*base, "--checkpoint", ckpt, "--resume"]) == 0
        resumed = capsys.readouterr().out

        assert main(base) == 0
        reference = capsys.readouterr().out
        assert totals(resumed) == totals(reference)
        assert "complete=True" in resumed

    def test_resume_without_checkpoint_flag_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["check", "repro.workloads.dining:dining_philosophers",
                  "-a", "2", "--resume"])

    def test_resume_with_missing_file_starts_fresh(self, tmp_path, capsys):
        ckpt = str(tmp_path / "never-written.ckpt")
        code = main(["check", "repro.workloads.dining:dining_philosophers",
                     "-a", "2", "--depth-bound", "300",
                     "--checkpoint", ckpt, "--resume"])
        assert code == 0
        assert "complete=True" in capsys.readouterr().out
