"""Checkpoint/resume round-trips: a resumed search equals an uninterrupted one.

Each strategy is run three ways on the same workload:

1. uninterrupted, as the reference;
2. with a checkpoint and a listener that requests a graceful stop
   mid-search (the programmatic stand-in for SIGINT);
3. resumed from the flushed checkpoint.

The resumed totals (executions, transitions, per-outcome counts,
completeness) must match the reference exactly — the whole point of
checkpointing a deterministic search.
"""

import dataclasses

import pytest

from repro.checker import Checker
from repro.core.policies import fair_policy
from repro.engine.executor import ExecutorConfig
from repro.engine.strategies import (
    BfsStrategy,
    DfsStrategy,
    DporStrategy,
    ExplorationLimits,
    IcbStrategy,
    RandomWalkStrategy,
    SleepSetStrategy,
    merge_sweeps,
)
from repro.resilience import (
    ResilienceController,
    ResilienceOptions,
    load_checkpoint,
)
from repro.workloads.dining import dining_philosophers

CONFIG = ExecutorConfig(depth_bound=300)
STRATEGIES = ["dfs", "bfs", "random", "icb", "por", "dpor"]
#: Executions to run before the listener requests the graceful stop.
INTERRUPT_AFTER = 7


def build(name, program, *, listener=None, resilience=None):
    factory = fair_policy()
    limits = ExplorationLimits()
    if name == "dfs":
        return DfsStrategy(program, factory, CONFIG, limits,
                           listener=listener, resilience=resilience)
    if name == "bfs":
        return BfsStrategy(program, factory, CONFIG, limits,
                           listener=listener, resilience=resilience)
    if name == "random":
        return RandomWalkStrategy(program, factory, CONFIG, limits,
                                  executions=25, seed=11,
                                  listener=listener, resilience=resilience)
    if name == "icb":
        return IcbStrategy(program, factory, 1,
                           dataclasses.replace(CONFIG, preemption_bound=None),
                           limits, listener=listener, resilience=resilience)
    if name == "por":
        return SleepSetStrategy(program, factory, depth_bound=300,
                                limits=limits, listener=listener,
                                resilience=resilience)
    if name == "dpor":
        return DporStrategy(program, factory, depth_bound=300,
                            limits=limits, listener=listener,
                            resilience=resilience)
    raise AssertionError(name)


def totalize(name, raw):
    if name == "icb":
        return merge_sweeps("dining(2)", "fair", raw)
    return raw


def controller_for(path, program):
    options = ResilienceOptions(checkpoint_path=path,
                                checkpoint_interval=10_000,
                                handle_signals=False)
    return ResilienceController(options, program=program,
                                policy_name="fair", config=CONFIG)


@pytest.mark.parametrize("name", STRATEGIES)
class TestResumeEqualsUninterrupted:
    def test_round_trip(self, name, tmp_path):
        program = dining_philosophers(2)
        reference = totalize(name, build(name, program).explore())
        assert reference.executions > INTERRUPT_AFTER

        # Interrupted leg: request a graceful stop mid-search; the final
        # checkpoint is flushed on the way out.
        ckpt = tmp_path / "search.ckpt"
        controller = controller_for(ckpt, program)
        seen = [0]

        def stop_midway(record):
            seen[0] += 1
            if seen[0] >= INTERRUPT_AFTER:
                controller.request_stop("test")

        partial = totalize(name, build(
            name, program, listener=stop_midway,
            resilience=controller).explore())
        assert partial.stop_reason == "interrupted"
        assert partial.interrupted
        assert not partial.complete
        assert partial.executions == INTERRUPT_AFTER
        assert partial.executions < reference.executions
        assert ckpt.exists()

        # Resumed leg: fresh strategy object, state from the checkpoint.
        resumed_strategy = build(name, program)
        resumed_strategy.load_state_dict(load_checkpoint(ckpt)["state"])
        resumed = totalize(name, resumed_strategy.explore())

        assert resumed.executions == reference.executions
        assert resumed.transitions == reference.transitions
        assert dict(resumed.outcomes) == dict(reference.outcomes)
        assert resumed.complete == reference.complete
        assert resumed.stop_reason is None

    def test_checkpoint_refuses_other_strategy(self, name, tmp_path):
        program = dining_philosophers(2)
        ckpt = tmp_path / "search.ckpt"
        controller = controller_for(ckpt, program)
        controller.flush_checkpoint(build(name, program,
                                          resilience=controller))
        other = "bfs" if name != "bfs" else "dfs"
        with pytest.raises(ValueError, match="written by strategy"):
            build(other, program).load_state_dict(
                load_checkpoint(ckpt)["state"])


class TestCheckerResume:
    def test_limit_stop_then_resume_completes(self, tmp_path):
        ckpt = str(tmp_path / "search.ckpt")
        reference = Checker(dining_philosophers(2), depth_bound=300,
                            handle_signals=False).run()

        partial = Checker(dining_philosophers(2), depth_bound=300,
                          checkpoint_path=ckpt, checkpoint_interval=5,
                          max_executions=10, handle_signals=False).run()
        assert partial.exploration.stop_reason == "max-executions"
        assert partial.exploration.executions == 10

        resumed = Checker(dining_philosophers(2), depth_bound=300,
                          handle_signals=False).run(resume_from=ckpt)
        assert resumed.exploration.executions == reference.exploration.executions
        assert resumed.exploration.transitions == reference.exploration.transitions
        assert resumed.exploration.complete

    def test_resume_rejects_other_program(self, tmp_path):
        from repro.workloads.spinloop import spinloop

        ckpt = str(tmp_path / "search.ckpt")
        Checker(dining_philosophers(2), depth_bound=300, checkpoint_path=ckpt,
                max_executions=5, handle_signals=False).run()
        with pytest.raises(ValueError, match="recorded for program"):
            Checker(spinloop(), depth_bound=300,
                    handle_signals=False).run(resume_from=ckpt)

    def test_checkpoint_interval_paces_periodic_writes(self, tmp_path):
        from repro.obs import CheckpointWritten, CollectingSink, Observer

        sink = CollectingSink()
        Checker(dining_philosophers(2), depth_bound=300,
                checkpoint_path=str(tmp_path / "s.ckpt"),
                checkpoint_interval=10, handle_signals=False,
                observer=Observer(sink=sink)).run()
        written = sink.of_type(CheckpointWritten)
        # 42 executions at interval 10 -> 4 periodic snapshots + the
        # final flush.
        assert len(written) == 5
        assert written[-1].executions == 42
