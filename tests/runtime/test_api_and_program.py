"""Runtime verbs (spawn/join/choose/check) and program factory tests."""

import pytest

from repro.core.policies import NonfairPolicy, nonfair_policy
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.results import Outcome
from repro.engine.strategies import explore_dfs
from repro.runtime.api import check, choose, join, sleep, spawn, yield_now
from repro.runtime.errors import AssertionViolation
from repro.runtime.program import VMProgram, program
from repro.runtime.vm import VirtualMachine


def run_to_end(setup, guide=(), **config_kwargs):
    return run_execution(
        VMProgram(setup, name="t"), NonfairPolicy(), GuidedChooser(guide),
        ExecutorConfig(**config_kwargs),
    )


class TestSpawnJoin:
    def test_parent_waits_for_child(self):
        order = []

        def setup(env):
            def child():
                yield from sleep()
                order.append("child")

            def parent():
                task = yield from spawn(child, name="kid")
                ok = yield from join(task)
                order.append(("parent", ok))

            env.spawn(parent, name="parent")

        record = run_to_end(setup)
        assert record.outcome is Outcome.TERMINATED
        assert order == ["child", ("parent", True)]

    def test_join_timeout_returns_false_when_pending(self):
        results = []

        def setup(env):
            def child():
                yield from sleep()
                yield from sleep()

            def parent():
                task = yield from spawn(child)
                results.append((yield from join(task, timeout=1)))

            env.spawn(parent, name="parent")

        # Guide: parent start, spawn, then immediately try the join.
        record = run_to_end(setup, guide=[0, 0, 0])
        assert results and results[0] is False

    def test_join_on_crashed_task_succeeds(self):
        outcomes = []

        def setup(env):
            def child():
                yield from sleep()
                raise AssertionViolation("child blew up")

            def parent():
                task = yield from spawn(child, name="kid")
                outcomes.append((yield from join(task)))

            env.spawn(parent, name="parent")

        record = run_to_end(setup)
        # The child's violation ends the whole execution.
        assert record.outcome is Outcome.VIOLATION


class TestChooseAndCheck:
    def test_choose_explores_all_branches(self):
        seen = []

        def setup(env):
            def body():
                value = yield from choose(3)
                seen.append(value)

            env.spawn(body, name="c")

        result = explore_dfs(VMProgram(setup, name="choices"),
                             nonfair_policy())
        assert result.complete
        assert sorted(set(seen)) == [0, 1, 2]

    def test_check_raises_violation(self):
        with pytest.raises(AssertionViolation):
            check(False, "nope")
        check(True, "fine")  # no raise

    def test_yield_now_is_yielding_transition(self):
        def setup(env):
            def body():
                yield from yield_now()

            env.spawn(body, name="y")

        record = run_to_end(setup)
        assert any(step.yielded for step in record.trace)


class TestProgramFactory:
    def test_decorator_builds_program(self):
        @program("decorated")
        def my_program(env):
            def body():
                yield from sleep()

            env.spawn(body, name="b")

        assert isinstance(my_program, VMProgram)
        assert my_program.name == "decorated"
        instance = my_program.instantiate()
        assert len(instance.thread_ids()) == 1

    def test_instances_are_fresh(self):
        counter = {"builds": 0}

        def setup(env):
            counter["builds"] += 1

            def body():
                yield from sleep()

            env.spawn(body)

        prog = VMProgram(setup, name="fresh")
        prog.instantiate()
        prog.instantiate()
        assert counter["builds"] == 2

    def test_repr(self):
        assert "fresh" in repr(VMProgram(lambda env: None, name="fresh"))
