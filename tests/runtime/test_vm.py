"""Virtual machine tests: predicates, transitions, spawning, signatures."""

import pytest

from repro.core.model import RunStatus
from repro.runtime.api import pause, spawn, yield_now
from repro.runtime.errors import ScheduleError
from repro.runtime.vm import VirtualMachine
from repro.sync.mutex import Mutex


def drain(vm, order=None, limit=200):
    """Run the VM scheduling the lowest enabled tid (or a given order)."""
    steps = 0
    schedule = list(order or [])
    while vm.enabled_threads() and steps < limit:
        if schedule:
            tid = schedule.pop(0)
        else:
            tid = min(vm.enabled_threads())
        vm.step(tid)
        steps += 1
    return steps


class TestBasics:
    def test_spawn_assigns_increasing_tids(self):
        vm = VirtualMachine()

        def body():
            yield from pause()

        first = vm.spawn_task(body, name="a")
        second = vm.spawn_task(body, name="b")
        assert (first.tid, second.tid) == (0, 1)
        assert vm.thread_ids() == frozenset({0, 1})

    def test_default_name_includes_function(self):
        vm = VirtualMachine()

        def my_worker():
            yield from pause()

        task = vm.spawn_task(my_worker)
        assert "my_worker" in task.name

    def test_non_generator_rejected(self):
        vm = VirtualMachine()
        with pytest.raises(TypeError):
            vm.spawn_task(lambda: 42)

    def test_step_disabled_thread_rejected(self):
        vm = VirtualMachine()
        lock = Mutex()

        def holder():
            yield from lock.acquire()
            yield from pause()
            yield from lock.release()

        def waiter():
            yield from lock.acquire()
            yield from lock.release()

        vm.spawn_task(holder, name="holder")
        vm.spawn_task(waiter, name="waiter")
        vm.step(0)  # start
        vm.step(0)  # acquire
        vm.step(1)  # start waiter -> now blocked on acquire
        assert vm.enabled_threads() == frozenset({0})
        with pytest.raises(ScheduleError):
            vm.step(1)
        with pytest.raises(ScheduleError):
            vm.step(99)

    def test_status_terminated(self):
        vm = VirtualMachine()

        def body():
            yield from pause()

        vm.spawn_task(body)
        drain(vm)
        assert vm.status() is RunStatus.TERMINATED
        assert not vm.has_live_threads()

    def test_status_deadlock(self):
        vm = VirtualMachine()
        lock = Mutex()

        def body():
            yield from lock.acquire()
            yield from lock.acquire()  # self-deadlock (non-reentrant)

        vm.spawn_task(body)
        drain(vm)
        assert vm.status() is RunStatus.DEADLOCK
        assert vm.has_live_threads()


class TestStepInfo:
    def test_yield_flag_reported(self):
        vm = VirtualMachine()

        def body():
            yield from yield_now()

        vm.spawn_task(body)
        start_info = vm.step(0)
        assert not start_info.yielded
        yield_info = vm.step(0)
        assert yield_info.yielded
        assert yield_info.operation == "yield"

    def test_enabled_sets_track_blocking(self):
        vm = VirtualMachine()
        lock = Mutex(name="L")

        def holder():
            yield from lock.acquire()
            yield from pause()
            yield from lock.release()

        def waiter():
            yield from lock.acquire()
            yield from lock.release()

        vm.spawn_task(holder, name="h")
        vm.spawn_task(waiter, name="w")
        vm.step(0)
        vm.step(1)  # both started; both pending acquire
        info = vm.step(0)  # holder acquires: waiter becomes disabled
        assert info.enabled_before == frozenset({0, 1})
        assert info.enabled_after == frozenset({0})

    def test_spawned_threads_reported(self):
        vm = VirtualMachine()

        def child():
            yield from pause()

        def parent():
            yield from spawn(child, name="kid")

        vm.spawn_task(parent, name="parent")
        vm.step(0)
        info = vm.step(0)  # executes the spawn
        assert len(info.spawned) == 1
        assert vm.task(info.spawned[0]).name == "kid"


class TestSignatures:
    def test_default_signature_changes_with_progress(self):
        vm = VirtualMachine()

        def body():
            yield from pause()
            yield from pause()

        vm.spawn_task(body)
        sig0 = vm.state_signature()
        vm.step(0)
        sig1 = vm.state_signature()
        assert sig0 != sig1

    def test_manual_state_fn_used(self):
        vm = VirtualMachine()
        cell = {"x": 0}
        vm.set_state_fn(lambda: cell["x"])
        assert vm.state_signature() == 0
        cell["x"] = 5
        assert vm.state_signature() == 5

    def test_precise_signature_distinguishes_pendings(self):
        vm = VirtualMachine()
        vm.set_state_fn(lambda: "constant")

        def body():
            yield from pause("p1")
            yield from pause("p2")

        vm.spawn_task(body)
        before = vm.precise_signature()
        vm.step(0)
        after = vm.precise_signature()
        assert vm.state_signature() == vm.state_signature()
        assert before != after


class TestDataChoices:
    def test_choose_without_handler_fails(self):
        from repro.runtime.api import choose

        vm = VirtualMachine()

        def body():
            value = yield from choose(3)
            return value

        vm.spawn_task(body)
        vm.step(0)
        with pytest.raises(ScheduleError):
            vm.step(0)

    def test_choose_with_handler(self):
        from repro.runtime.api import choose

        vm = VirtualMachine()
        vm.data_choice_handler = lambda n: n - 1
        results = []

        def body():
            value = yield from choose(4)
            results.append(value)

        vm.spawn_task(body)
        drain(vm)
        assert results == [3]

    def test_out_of_range_handler_detected(self):
        from repro.runtime.api import choose

        vm = VirtualMachine()
        vm.data_choice_handler = lambda n: n  # off by one

        def body():
            yield from choose(2)

        vm.spawn_task(body)
        vm.step(0)
        with pytest.raises(ScheduleError):
            vm.step(0)
