"""Native-thread runtime tests: real OS threads under the checker."""

import pytest

from repro.checker import Checker, check
from repro.engine.results import DivergenceKind, Outcome
from repro.runtime.native import (
    NativeEvent,
    NativeMutex,
    NativeProgram,
    NativeSemaphore,
    NativeSharedVar,
    join,
    spawn,
    yield_now,
)
from repro.runtime.errors import ScheduleError


def counter_program(racy: bool):
    def setup(env):
        lock = NativeMutex(name="L")
        counter = NativeSharedVar(0, name="n")
        done = []

        def safe_worker():
            lock.acquire()
            value = counter.get()
            counter.set(value + 1)
            lock.release()

        def racy_worker():
            value = counter.get()
            counter.set(value + 1)

        worker = racy_worker if racy else safe_worker
        workers = [env.spawn(worker, name=f"w{i}") for i in range(2)]

        def auditor():
            for task in workers:
                join(task)
            from repro.runtime.errors import AssertionViolation

            if counter.peek() != 2:
                raise AssertionViolation("lost update")

        env.spawn(auditor, name="auditor")
        env.set_state_fn(lambda: (counter.peek(), lock.owner_name()))

    label = "racy" if racy else "safe"
    return NativeProgram(setup, name=f"native-counter-{label}")


class TestNativeChecking:
    def test_safe_counter_passes(self):
        result = check(counter_program(racy=False), depth_bound=200)
        assert result.ok
        assert result.exploration.complete

    def test_racy_counter_fails_with_replayable_schedule(self):
        checker = Checker(counter_program(racy=True), depth_bound=200)
        result = checker.run()
        assert not result.ok
        assert "lost update" in str(result.violation.violation)
        replayed = checker.replay(result.violation)
        assert replayed.outcome is Outcome.VIOLATION

    def test_fairness_terminates_native_spin_loop(self):
        def setup(env):
            x = NativeSharedVar(0, name="x")

            def t():
                x.set(1)

            def u():
                while x.get() != 1:
                    yield_now()

            env.spawn(t, name="t")
            env.spawn(u, name="u")

        result = check(NativeProgram(setup, name="native-spin"),
                       depth_bound=200)
        assert result.ok
        assert result.exploration.complete

    def test_gs_violation_detected_on_native_threads(self):
        def setup(env):
            x = NativeSharedVar(0, name="x")

            def t():
                x.set(1)

            def u():
                while x.get() != 1:
                    pass  # spins without yielding

            env.spawn(t, name="t")
            env.spawn(u, name="u")

        result = check(NativeProgram(setup, name="native-spin-noyield"),
                       depth_bound=150)
        assert not result.ok
        assert result.gs_violation is not None


class TestNativePrimitives:
    def test_dynamic_spawn_and_join(self):
        def setup(env):
            log = []

            def child():
                log.append("child")

            def parent():
                task = spawn(child, name="kid")
                join(task)
                log.append("parent")
                from repro.runtime.errors import AssertionViolation

                if log != ["child", "parent"]:
                    raise AssertionViolation(f"bad order: {log}")

            env.spawn(parent, name="parent")

        result = check(NativeProgram(setup, name="native-spawn"),
                       depth_bound=200, max_executions=500)
        assert result.ok

    def test_semaphore_and_event(self):
        def setup(env):
            sem = NativeSemaphore(0, name="s")
            evt = NativeEvent(name="e")
            order = []

            def producer():
                order.append("produce")
                sem.release()
                evt.set()

            def consumer():
                sem.wait()
                evt.wait()
                order.append("consume")

            env.spawn(producer, name="p")
            env.spawn(consumer, name="c")

        result = check(NativeProgram(setup, name="native-sem"),
                       depth_bound=200)
        assert result.ok

    def test_deadlock_detected(self):
        def setup(env):
            a, b = NativeMutex(name="a"), NativeMutex(name="b")

            def left():
                a.acquire()
                b.acquire()
                b.release()
                a.release()

            def right():
                b.acquire()
                a.acquire()
                a.release()
                b.release()

            env.spawn(left, name="L")
            env.spawn(right, name="R")

        result = check(NativeProgram(setup, name="native-deadlock"),
                       depth_bound=200)
        assert not result.ok
        assert result.exploration.deadlocks

    def test_primitive_outside_controlled_thread_rejected(self):
        lock = NativeMutex()
        with pytest.raises(ScheduleError):
            lock.acquire()


class TestDeterminism:
    def test_replay_determinism_across_real_threads(self):
        from repro.core.policies import fair_policy
        from repro.engine.executor import (
            ExecutorConfig,
            GuidedChooser,
            RandomChooser,
            run_execution,
        )
        import random

        program = counter_program(racy=False)
        config = ExecutorConfig(depth_bound=200)
        original = run_execution(program, fair_policy()(),
                                 RandomChooser(random.Random(3)), config)
        replayed = run_execution(program, fair_policy()(),
                                 GuidedChooser(original.schedule), config)
        assert [s.operation for s in original.trace] == \
            [s.operation for s in replayed.trace]
