"""Task lifecycle tests."""

import pytest

from repro.runtime.errors import AssertionViolation, TaskCrash
from repro.runtime.ops import PauseOp, StartOp
from repro.runtime.task import Task, TaskState


def make_task(gen_fn, *args):
    return Task(0, "worker", gen_fn(*args))


class TestLifecycle:
    def test_new_task_pending_start(self):
        def body():
            yield PauseOp()

        task = make_task(body)
        assert isinstance(task.pending, StartOp)
        assert task.state is TaskState.READY
        assert not task.done

    def test_advance_to_first_operation(self):
        def body():
            yield PauseOp("first")

        task = make_task(body)
        task.advance(None)
        assert isinstance(task.pending, PauseOp)
        assert task.pending.label == "first"

    def test_finish_with_return_value(self):
        def body():
            yield PauseOp()
            return 42

        task = make_task(body)
        task.advance(None)  # start -> pause
        task.advance(None)  # pause -> return
        assert task.state is TaskState.FINISHED
        assert task.done
        assert task.result == 42
        assert task.pending is None

    def test_value_sent_into_generator(self):
        seen = []

        def body():
            value = yield PauseOp()
            seen.append(value)

        task = make_task(body)
        task.advance(None)
        task.advance("hello")
        assert seen == ["hello"]

    def test_immediate_return(self):
        def body():
            return "done"
            yield  # pragma: no cover - makes this a generator

        task = make_task(body)
        task.advance(None)
        assert task.done
        assert task.result == "done"


class TestFailures:
    def test_crash_wrapped_and_marked(self):
        def body():
            yield PauseOp()
            raise RuntimeError("boom")

        task = make_task(body)
        task.advance(None)
        with pytest.raises(TaskCrash) as excinfo:
            task.advance(None)
        assert task.state is TaskState.FAILED
        assert task.failed
        assert "boom" in str(excinfo.value)
        assert isinstance(excinfo.value.original, RuntimeError)
        assert excinfo.value.tid == 0

    def test_property_violation_passes_through(self):
        def body():
            yield PauseOp()
            raise AssertionViolation("invariant down")

        task = make_task(body)
        task.advance(None)
        with pytest.raises(AssertionViolation) as excinfo:
            task.advance(None)
        assert task.failed
        assert excinfo.value.tid == 0

    def test_yielding_non_operation_is_an_error(self):
        def body():
            yield "not an operation"

        task = make_task(body)
        with pytest.raises(TaskCrash) as excinfo:
            task.advance(None)
        assert "yield from" in str(excinfo.value)
        assert task.failed
