"""The fault plane itself: rules, plans, the injector, the globals."""

import errno
import json

import pytest

from repro.chaos.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    WriteRecorder,
    active,
    fault_at,
    fault_plan,
    install,
    install_recorder,
    record_op,
    uninstall,
    uninstall_recorder,
)


class TestFaultRule:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultRule(point="x", kind="disk-on-fire")

    def test_rejects_zero_hit(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultRule(point="x", kind="enospc", at=0)

    def test_rejects_bad_keep_fraction(self):
        with pytest.raises(ValueError, match="fraction"):
            FaultRule(point="x", kind="torn-write", keep=1.5)

    def test_round_trips_through_dict(self):
        rule = FaultRule(point="checkpoint.*", kind="torn-write", at=3,
                         times=2, match={"worker": 1}, keep=0.25)
        clone = FaultRule.from_dict(
            json.loads(json.dumps(rule.to_dict())))
        assert clone == rule


class TestFaultPlan:
    def test_round_trips_through_dict(self):
        plan = FaultPlan(rules=[FaultRule(point="a", kind="eio")],
                         seed=7, name="p")
        clone = FaultPlan.from_dict(json.loads(json.dumps(plan.to_dict())))
        assert clone == plan

    def test_seeded_is_deterministic(self):
        a = FaultPlan.seeded(42, "checkpoint.write", "enospc")
        b = FaultPlan.seeded(42, "checkpoint.write", "enospc")
        assert a.rules[0].at == b.rules[0].at

    def test_seeded_varies_with_seed(self):
        hits = {FaultPlan.seeded(seed, "checkpoint.write", "enospc",
                                 max_hit=50).rules[0].at
                for seed in range(30)}
        assert len(hits) > 1

    def test_all_kinds_are_plannable(self):
        for kind in FAULT_KINDS:
            plan = FaultPlan.seeded(0, "p", kind)
            assert plan.rules[0].kind == kind


class TestFaultInjector:
    def test_fires_on_the_armed_hit_only(self):
        injector = FaultInjector(FaultPlan(
            rules=[FaultRule(point="p", kind="fsync-drop", at=2)]))
        assert injector.check("p") is None
        assert injector.check("p").kind == "fsync-drop"
        assert injector.check("p") is None
        assert [f.hit for f in injector.fired] == [2]

    def test_times_extends_the_firing_window(self):
        injector = FaultInjector(FaultPlan(
            rules=[FaultRule(point="p", kind="fsync-drop", at=1, times=3)]))
        fired = [injector.check("p") is not None for _ in range(5)]
        assert fired == [True, True, True, False, False]

    def test_point_patterns_glob(self):
        injector = FaultInjector(FaultPlan(
            rules=[FaultRule(point="checkpoint.*", kind="fsync-drop")]))
        assert injector.check("checkpoint.write") is not None
        assert injector.check("job.write") is None

    def test_context_match_restricts_firing(self):
        injector = FaultInjector(FaultPlan(
            rules=[FaultRule(point="p", kind="fsync-drop",
                             match={"worker": 0})]))
        assert injector.check("p", worker=1) is None
        # The miss still consumed hit #1; arm `at` covers hit 2 too.
        injector2 = FaultInjector(FaultPlan(
            rules=[FaultRule(point="p", kind="fsync-drop", at=1,
                             match={"worker": 0})]))
        assert injector2.check("p", worker=0) is not None

    def test_enospc_raises_real_oserror(self):
        injector = FaultInjector(FaultPlan(
            rules=[FaultRule(point="p", kind="enospc")]))
        with pytest.raises(OSError) as info:
            injector.check("p", path="/x/y")
        assert info.value.errno == errno.ENOSPC
        assert injector.fired  # audited before raising

    def test_eio_raises_real_oserror(self):
        injector = FaultInjector(FaultPlan(
            rules=[FaultRule(point="p", kind="eio")]))
        with pytest.raises(OSError) as info:
            injector.check("p")
        assert info.value.errno == errno.EIO

    def test_on_fire_callback_sees_the_firing(self):
        seen = []
        injector = FaultInjector(
            FaultPlan(rules=[FaultRule(point="p", kind="fsync-drop")]),
            on_fire=seen.append)
        injector.check("p", worker=3)
        assert seen[0].point == "p"
        assert seen[0].context == (("worker", 3),)

    def test_on_fire_errors_never_mask_the_fault(self):
        def boom(fired):
            raise RuntimeError("telemetry bug")
        injector = FaultInjector(
            FaultPlan(rules=[FaultRule(point="p", kind="fsync-drop")]),
            on_fire=boom)
        assert injector.check("p") is not None


class TestGlobalPlane:
    def test_idle_fault_point_is_a_noop(self):
        uninstall()
        assert fault_at("anything", worker=1) is None
        assert active() is None

    def test_install_uninstall_cycle(self):
        injector = install(FaultPlan(
            rules=[FaultRule(point="p", kind="fsync-drop")]))
        try:
            assert active() is injector
            assert fault_at("p") is not None
        finally:
            uninstall()
        assert fault_at("p") is None

    def test_scoped_fault_plan_context_manager(self):
        with fault_plan(FaultPlan(
                rules=[FaultRule(point="p", kind="fsync-drop")])) as inj:
            fault_at("p")
        assert active() is None
        assert len(inj.fired) == 1

    def test_recorder_captures_ops_in_order(self):
        recorder = install_recorder(WriteRecorder())
        try:
            record_op("write", "/t", b"x")
            record_op("fsync", "/t")
        finally:
            uninstall_recorder()
        record_op("replace", "/t", "/p")  # after uninstall: dropped
        assert recorder.ops == [("write", "/t", b"x"), ("fsync", "/t")]
