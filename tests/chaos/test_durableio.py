"""The shared atomic writer under every write-path fault kind."""

import errno
import json

import pytest

from repro.chaos.faults import (
    FaultPlan,
    FaultRule,
    InjectedFault,
    WriteRecorder,
    fault_plan,
    install_recorder,
    uninstall_recorder,
)
from repro.durableio import atomic_write, atomic_write_json, \
    atomic_write_text


class TestHappyPath:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "f.json"
        atomic_write(target, b"payload")
        assert target.read_bytes() == b"payload"
        assert list(tmp_path.iterdir()) == [target]

    def test_text_and_json_helpers(self, tmp_path):
        atomic_write_text(tmp_path / "t.txt", "hello")
        assert (tmp_path / "t.txt").read_text() == "hello"
        atomic_write_json(tmp_path / "d.json", {"b": 1, "a": 2})
        loaded = json.loads((tmp_path / "d.json").read_text())
        assert loaded == {"a": 2, "b": 1}

    def test_overwrite_is_atomic(self, tmp_path):
        target = tmp_path / "f"
        atomic_write(target, b"old")
        atomic_write(target, b"new")
        assert target.read_bytes() == b"new"
        assert list(tmp_path.iterdir()) == [target]

    def test_records_the_op_sequence(self, tmp_path):
        recorder = install_recorder(WriteRecorder())
        try:
            atomic_write(tmp_path / "f", b"data", label="checkpoint")
        finally:
            uninstall_recorder()
        kinds = [op[0] for op in recorder.ops]
        assert kinds == ["write", "fsync", "replace", "fsync_dir"]

    def test_durable_false_skips_fsyncs(self, tmp_path):
        recorder = install_recorder(WriteRecorder())
        try:
            atomic_write(tmp_path / "f", b"data", durable=False)
        finally:
            uninstall_recorder()
        kinds = [op[0] for op in recorder.ops]
        assert kinds == ["write", "replace"]


class TestFaultedWrites:
    def test_torn_write_crashes_before_publish(self, tmp_path):
        target = tmp_path / "f"
        atomic_write(target, b"originaloriginal")
        plan = FaultPlan(rules=[FaultRule(point="file.write",
                                          kind="torn-write")])
        with fault_plan(plan):
            with pytest.raises(InjectedFault):
                atomic_write(target, b"replacementreplacement")
        # The original is untouched; the torn half sits in the tmp file.
        assert target.read_bytes() == b"originaloriginal"
        tmp = tmp_path / "f.tmp"
        assert tmp.read_bytes() == b"replacement"  # half of 22 bytes

    def test_short_write_publishes_corrupt_content(self, tmp_path):
        target = tmp_path / "f"
        plan = FaultPlan(rules=[FaultRule(point="file.write",
                                          kind="short-write")])
        with fault_plan(plan):
            atomic_write(target, b"0123456789")  # returns "successfully"
        assert target.read_bytes() == b"01234"

    def test_keep_fraction_controls_the_tear(self, tmp_path):
        plan = FaultPlan(rules=[FaultRule(point="file.write",
                                          kind="short-write", keep=0.2)])
        with fault_plan(plan):
            atomic_write(tmp_path / "f", b"0123456789")
        assert (tmp_path / "f").read_bytes() == b"01"

    def test_replace_interrupted_crashes_between_write_and_rename(
            self, tmp_path):
        target = tmp_path / "f"
        atomic_write(target, b"original")
        plan = FaultPlan(rules=[FaultRule(point="file.replace",
                                          kind="replace-interrupted")])
        with fault_plan(plan):
            with pytest.raises(InjectedFault):
                atomic_write(target, b"newer")
        assert target.read_bytes() == b"original"
        assert (tmp_path / "f.tmp").read_bytes() == b"newer"

    def test_enospc_surfaces_as_real_oserror(self, tmp_path):
        plan = FaultPlan(rules=[FaultRule(point="file.write",
                                          kind="enospc")])
        with fault_plan(plan):
            with pytest.raises(OSError) as info:
                atomic_write(tmp_path / "f", b"data")
        assert info.value.errno == errno.ENOSPC

    def test_fsync_drop_is_silent(self, tmp_path):
        recorder = install_recorder(WriteRecorder())
        plan = FaultPlan(rules=[FaultRule(point="file.fsync",
                                          kind="fsync-drop")])
        try:
            with fault_plan(plan):
                atomic_write(tmp_path / "f", b"data")
        finally:
            uninstall_recorder()
        # The write "succeeds" but no fsync op was issued for the file —
        # only the torture suite's simulated disk can tell the
        # difference (a crash now may tear the published content).
        assert (tmp_path / "f").read_bytes() == b"data"
        kinds = [op[0] for op in recorder.ops]
        assert kinds == ["write", "replace", "fsync_dir"]

    def test_labels_scope_the_fault_points(self, tmp_path):
        plan = FaultPlan(rules=[FaultRule(point="checkpoint.write",
                                          kind="enospc")])
        with fault_plan(plan):
            atomic_write(tmp_path / "job", b"x", label="job")  # unscathed
            with pytest.raises(OSError):
                atomic_write(tmp_path / "ckpt", b"x", label="checkpoint")
