"""Checkpoint rotation, corrupt-file recovery, and ENOSPC degradation."""

import pytest

from repro.chaos.faults import FaultPlan, FaultRule, fault_plan
from repro.checker import Checker
from repro.obs import Observer
from repro.resilience import ResilienceController, ResilienceOptions
from repro.resilience.checkpoint import CheckpointStore
from repro.workloads.dining import dining_philosophers


def payload(n=1):
    return {"program": "p", "strategy": "dfs",
            "state": {"strategy": "dfs", "frontier": {"n": n}}}


class TestRotation:
    def test_second_save_rotates_first_to_prev(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        store.save(payload(1))
        store.save(payload(2))
        assert store.load()["state"]["frontier"] == {"n": 2}
        prev = CheckpointStore._validate(tmp_path / "s.ckpt.prev")
        assert prev["state"]["frontier"] == {"n": 1}

    def test_first_save_has_no_prev(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        store.save(payload())
        assert not (tmp_path / "s.ckpt.prev").exists()

    def test_delete_removes_all_rotation_siblings(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        store.save(payload(1))
        store.save(payload(2))
        (tmp_path / "s.ckpt.corrupt").write_text("junk")
        store.delete()
        assert list(tmp_path.iterdir()) == []

    def test_list_hides_rotation_siblings(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        store.save(payload(1))
        store.save(payload(2))
        assert CheckpointStore.list(tmp_path) == [tmp_path / "s.ckpt"]


class TestLoadOrRecover:
    def test_clean_load_is_not_a_recovery(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        store.save(payload(1))
        loaded, recovered, quarantined = store.load_or_recover()
        assert loaded["state"]["frontier"] == {"n": 1}
        assert not recovered
        assert quarantined is None

    def test_corrupt_primary_recovers_from_prev(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        store.save(payload(1))
        store.save(payload(2))
        (tmp_path / "s.ckpt").write_text("{torn")
        loaded, recovered, quarantined = store.load_or_recover()
        assert loaded["state"]["frontier"] == {"n": 1}
        assert recovered
        # The bad file is preserved for forensics, out of the way.
        assert quarantined == tmp_path / "s.ckpt.corrupt"
        assert quarantined.read_text() == "{torn"
        # The store healed itself: a plain load now works.
        assert store.load()["state"]["frontier"] == {"n": 1}

    def test_missing_primary_recovers_from_prev(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        store.save(payload(1))
        store.save(payload(2))
        (tmp_path / "s.ckpt").unlink()
        loaded, recovered, quarantined = store.load_or_recover()
        assert loaded["state"]["frontier"] == {"n": 1}
        assert recovered
        assert quarantined is None  # nothing to quarantine

    def test_both_corrupt_reraises_the_primary_error(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        store.save(payload(1))
        store.save(payload(2))
        (tmp_path / "s.ckpt").write_text("{torn")
        (tmp_path / "s.ckpt.prev").write_text("{also torn")
        with pytest.raises(ValueError, match="truncated or corrupt"):
            store.load_or_recover()

    def test_nothing_on_disk_raises(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        with pytest.raises(ValueError, match="does not exist"):
            store.load_or_recover()

    def test_recoverable_checks_both_generations(self, tmp_path):
        store = CheckpointStore(tmp_path / "s.ckpt")
        assert not store.recoverable()
        store.save(payload(1))
        store.save(payload(2))
        assert store.recoverable()
        (tmp_path / "s.ckpt").unlink()
        assert store.recoverable()  # .prev alone is enough


class TestCheckerResumeRecovery:
    def _run(self, tmp_path, **kwargs):
        return Checker(dining_philosophers(2), depth_bound=60,
                       checkpoint_path=str(tmp_path / "s.ckpt"),
                       checkpoint_interval=1, handle_signals=False,
                       **kwargs)

    def test_resume_from_corrupt_checkpoint_warns_and_recovers(
            self, tmp_path):
        baseline = self._run(tmp_path).run()
        ckpt = tmp_path / "s.ckpt"
        ckpt.write_text(ckpt.read_text()[:40])  # tear the final save
        observer = Observer()
        resumed = self._run(tmp_path, observer=observer).run(
            resume_from=str(ckpt))
        assert any("quarantined" in w for w in resumed.warnings)
        assert observer.metrics.counter("checkpoints.recovered").value == 1
        assert (resumed.exploration.executions
                == baseline.exploration.executions)
        assert (resumed.exploration.transitions
                == baseline.exploration.transitions)

    def test_resume_at_limit_does_not_overshoot(self, tmp_path):
        first = self._run(tmp_path, max_executions=5).run()
        assert first.exploration.executions == 5
        resumed = self._run(tmp_path, max_executions=5).run(
            resume_from=str(tmp_path / "s.ckpt"))
        # The final checkpoint already sits at the cap; resuming it must
        # not run a 6th execution.
        assert resumed.exploration.executions == 5
        assert resumed.exploration.stop_reason == "max-executions"


class TestEnospcDegradation:
    def test_flush_failure_degrades_not_dies(self, tmp_path):
        observer = Observer()
        controller = ResilienceController(
            ResilienceOptions(checkpoint_path=str(tmp_path / "s.ckpt"),
                              checkpoint_interval=1,
                              handle_signals=False),
            observer=observer)

        class FakeStrategy:
            name = "dfs"

            def state_dict(self):
                return {"strategy": "dfs", "frontier": {}}

        plan = FaultPlan(rules=[FaultRule(point="checkpoint.write",
                                          kind="enospc", times=10**9)])
        with fault_plan(plan):
            saved = controller.flush_checkpoint(FakeStrategy())
        assert saved is None
        assert controller.checkpoint_write_failures == 1
        assert "ENOSPC" in controller.last_checkpoint_error or \
            "No space" in controller.last_checkpoint_error
        counter = observer.metrics.counter("checkpoints.write_failed")
        assert counter.value == 1
        assert not (tmp_path / "s.ckpt").exists()

    def test_search_survives_full_disk_checkpointing(self, tmp_path):
        plan = FaultPlan(rules=[FaultRule(point="checkpoint.write",
                                          kind="enospc", times=10**9)])
        checker = Checker(dining_philosophers(2), depth_bound=60,
                          checkpoint_path=str(tmp_path / "s.ckpt"),
                          checkpoint_interval=1, handle_signals=False)
        with fault_plan(plan):
            result = checker.run()
        assert result.ok  # verdict delivered despite zero checkpoints
        assert not (tmp_path / "s.ckpt").exists()
