"""The seeded fault matrix + crash-consistency torture, end to end.

Marked ``chaos``: excluded from the default (tier-1) run and executed by
the dedicated CI chaos job — each test runs many full searches.
"""

import pytest

from repro.chaos.harness import SCENARIOS, run_matrix
from repro.chaos.torture import STRATEGIES, torture_strategy

pytestmark = pytest.mark.chaos


class TestFaultMatrix:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matrix_is_green_for_fixed_seeds(self, seed):
        matrix = run_matrix(seed=seed)
        assert matrix.ok, "\n" + matrix.summary()
        assert len(matrix.scenarios) == len(SCENARIOS)

    def test_unknown_scenario_is_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos scenario"):
            run_matrix(only=["disk-on-fire"])


class TestTortureSweep:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_prefix_of_every_strategy_recovers(self, strategy):
        result = torture_strategy(strategy, max_executions=8)
        assert result.ok, "\n" + result.describe()
        # Sanity: the sweep actually exercised a nontrivial op log and
        # both durability brackets per prefix.
        assert result.prefixes > 20
        assert result.states_checked == 2 * result.prefixes
