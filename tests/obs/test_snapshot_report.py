"""Snapshot-cache amortization report: accounting and verdict."""

import pytest

from repro.obs.profile import format_snapshot_report, snapshot_amortization
from repro.workloads.boundedbuffer import bounded_buffer_program


@pytest.fixture(scope="module")
def report():
    # One real double-run shared by every assertion in the module; the
    # hotpath-bench configuration at a reduced execution cap.
    return snapshot_amortization(
        lambda: bounded_buffer_program(items=2, consumers=2),
        strategy="dfs", depth_bound=200, preemption_bound=2,
        snapshot_interval=4, max_executions=120,
    )


class TestAccounting:
    def test_runs_agree_on_the_search(self, report):
        off, on = report["runs"]
        assert off["executions"] == on["executions"]
        assert off["transitions"] == on["transitions"]
        assert on["replayed_steps"] < off["replayed_steps"]

    def test_capture_and_restore_costs_are_recorded(self, report):
        accounting = report["accounting"]
        assert accounting["capture"]["count"] > 0
        assert accounting["restore"]["count"] > 0
        assert accounting["capture"]["bytes"] > 0
        assert accounting["restore"]["bytes"] > 0

    def test_accounted_cost_matches_the_phase_timer(self, report):
        # Acceptance criterion: capture+restore sums must explain the
        # "snapshot" phase-timer total to within 10%.  By construction
        # every perf_counter pair feeds both, so this is exact up to
        # float rounding — the 10% bound just keeps the test honest.
        accounting = report["accounting"]
        phase = accounting["snapshot_phase_seconds"]
        assert phase > 0
        assert accounting["accounted_seconds"] == pytest.approx(
            phase, rel=0.10)
        assert accounting["accounted_fraction"] == pytest.approx(
            1.0, abs=0.10)


class TestVerdict:
    def test_verdict_recommends_the_winning_cache(self, report):
        # This report once flagged the cache as a wall-clock regression:
        # per-capture policy deepcopy cost more than the replay savings.
        # The persistent snapshot_state/restore_state protocol cut
        # capture+restore to O(changed), so on the hotpath workload the
        # model now nets positive and the verdict is ON — pinned here so
        # a future change that re-inflates capture cost fails loudly.
        assert report["verdict"] == "on"

    def test_model_identity(self, report):
        model = report["model"]
        assert model["saved_steps"] > 0
        assert model["overhead_seconds"] == pytest.approx(
            report["accounting"]["accounted_seconds"])
        assert model["break_even_per_step_seconds"] == pytest.approx(
            model["overhead_seconds"] / model["saved_steps"])

    def test_format_renders_every_section(self, report):
        text = format_snapshot_report(report)
        assert "cost accounting (cache on):" in text
        assert "refreshes" in text
        assert "amortization model:" in text
        assert "verdict: snapshot cache ON for this workload" in text
        for reason in report["reasons"]:
            assert reason in text
