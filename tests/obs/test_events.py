"""Event model, sinks and the JSONL trace writer."""

import io

import pytest

from repro.obs.events import (
    CallbackSink,
    CollectingSink,
    DivergenceClassified,
    ExecutionFinished,
    MultiSink,
    SchedulingDecision,
    event_from_dict,
)
from repro.obs.trace import JsonlTraceWriter, read_jsonl, schedule_from_events


def decision(execution=0, step=0, index=0, options=2):
    return SchedulingDecision(execution=execution, step=step, kind="thread",
                              index=index, options=options, chosen="'t'",
                              schedulable=2, enabled=2)


class TestEvents:
    def test_to_dict_includes_type(self):
        d = decision().to_dict()
        assert d["type"] == "scheduling.decision"
        assert d["index"] == 0 and d["options"] == 2

    def test_roundtrip_via_dict(self):
        original = DivergenceClassified(execution=3, kind="livelock",
                                        culprits=("a", "b"), window=64,
                                        detail="spins")
        restored = event_from_dict(original.to_dict())
        assert restored == original

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            event_from_dict({"type": "nope"})


class TestSinks:
    def test_collecting_sink_filters_by_type(self):
        sink = CollectingSink()
        sink.emit(decision())
        sink.emit(ExecutionFinished(execution=0, outcome="terminated",
                                    steps=3, preemptions=0,
                                    hit_depth_bound=False))
        assert len(sink.events) == 2
        assert len(sink.of_type(SchedulingDecision)) == 1

    def test_callback_and_multi_sink(self):
        seen = []
        collecting = CollectingSink()
        fan = MultiSink(CallbackSink(seen.append), collecting)
        fan.emit(decision())
        assert len(seen) == 1
        assert len(collecting.events) == 1
        fan.close()  # must not raise


class TestJsonlTrace:
    def test_writer_reader_roundtrip(self):
        buffer = io.StringIO()
        writer = JsonlTraceWriter(buffer)
        events = [decision(step=i, index=i % 2) for i in range(3)]
        for event in events:
            writer.emit(event)
        writer.close()
        assert writer.events_written == 3
        restored = list(read_jsonl(io.StringIO(buffer.getvalue())))
        assert restored == events

    def test_writer_owns_file_path(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        writer = JsonlTraceWriter(path)
        writer.emit(decision())
        writer.close()
        assert len(list(read_jsonl(path))) == 1


class TestScheduleFromEvents:
    def _trace(self):
        return [
            decision(execution=0, step=0, index=0),
            ExecutionFinished(execution=0, outcome="terminated", steps=1,
                              preemptions=0, hit_depth_bound=False),
            decision(execution=1, step=0, index=1),
            decision(execution=1, step=1, index=0),
            ExecutionFinished(execution=1, outcome="violation", steps=2,
                              preemptions=0, hit_depth_bound=False),
        ]

    def test_defaults_to_interesting_execution(self):
        assert schedule_from_events(self._trace()) == [1, 0]

    def test_explicit_execution_index(self):
        assert schedule_from_events(self._trace(), execution=0) == [0]

    def test_missing_execution_raises(self):
        with pytest.raises(ValueError):
            schedule_from_events(self._trace(), execution=9)

    def test_no_interesting_execution_raises(self):
        events = [decision(execution=0)]
        with pytest.raises(ValueError):
            schedule_from_events(events)
