"""Thread-safety hammer for the metrics registry.

The checking service shares one :class:`MetricsRegistry` between its
scheduler, worker fleet, poll loop, and HTTP handlers, so counters,
gauges, histograms, and the registry's get-or-create paths must tolerate
concurrent mutation without losing updates or corrupting state.
"""

import threading

from repro.obs import MetricsRegistry

THREADS = 8
ITERATIONS = 2_000


def hammer(worker, threads=THREADS):
    barrier = threading.Barrier(threads)

    def run(index):
        barrier.wait()
        worker(index)

    pool = [threading.Thread(target=run, args=(i,)) for i in range(threads)]
    for thread in pool:
        thread.start()
    for thread in pool:
        thread.join()


class TestCounterConcurrency:
    def test_no_lost_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        hammer(lambda i: [counter.inc() for _ in range(ITERATIONS)])
        assert counter.value == THREADS * ITERATIONS

    def test_weighted_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("hits")
        hammer(lambda i: [counter.inc(3) for _ in range(ITERATIONS)])
        assert counter.value == 3 * THREADS * ITERATIONS


class TestGaugeConcurrency:
    def test_add_is_atomic(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("wall")
        hammer(lambda i: [gauge.add(1.0) for _ in range(ITERATIONS)])
        assert gauge.value == THREADS * ITERATIONS

    def test_set_last_write_wins_but_never_corrupts(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("level")
        hammer(lambda i: [gauge.set(float(i)) for _ in range(ITERATIONS)])
        assert gauge.value in {float(i) for i in range(THREADS)}


class TestHistogramConcurrency:
    def test_count_and_total_consistent(self):
        registry = MetricsRegistry()
        hist = registry.histogram("wait")
        hammer(lambda i: [hist.record(i + 1) for _ in range(ITERATIONS)])
        assert hist.count == THREADS * ITERATIONS
        assert hist.total == sum((i + 1) * ITERATIONS
                                 for i in range(THREADS))
        assert hist.min == 1
        assert hist.max == THREADS

    def test_percentile_readable_during_writes(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        stop = threading.Event()
        errors = []

        def reader():
            while not stop.is_set():
                try:
                    hist.percentile(0.5)
                    hist.to_dict()
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)
                    return

        thread = threading.Thread(target=reader)
        thread.start()
        hammer(lambda i: [hist.record(v % 97) for v in range(ITERATIONS)])
        stop.set()
        thread.join()
        assert errors == []
        assert hist.count == THREADS * ITERATIONS


class TestRegistryConcurrency:
    def test_get_or_create_returns_one_instance(self):
        registry = MetricsRegistry()
        seen = [None] * THREADS

        def worker(index):
            for n in range(200):
                counter = registry.counter(f"c{n}")
                counter.inc()
            seen[index] = registry.counter("c0")

        hammer(worker)
        assert len(registry.names()) == 200
        assert all(c is seen[0] for c in seen)
        # Every increment to every counter survived: each of the 200
        # counters was bumped once per worker per round.
        assert registry.counter("c7").value == THREADS

    def test_mixed_kinds_and_snapshots_under_load(self):
        registry = MetricsRegistry()
        errors = []

        def worker(index):
            try:
                for n in range(500):
                    registry.counter(f"count.{n % 17}").inc()
                    registry.gauge(f"gauge.{n % 5}").add(0.5)
                    registry.histogram("h").record(n)
                    if n % 50 == 0:
                        registry.to_dict()
                        registry.summary()
                        len(registry)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        hammer(worker)
        assert errors == []
        assert registry.histogram("h").count == THREADS * 500
        total = sum(registry.counter(f"count.{n}").value
                    for n in range(17))
        assert total == THREADS * 500
