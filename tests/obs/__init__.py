"""Telemetry subsystem tests."""
