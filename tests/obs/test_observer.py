"""Observer integration: the engine populates metrics, timers and events."""

import io

from repro.checker import Checker
from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.replay import replay_schedule
from repro.engine.executor import ExecutorConfig
from repro.engine.results import Outcome
from repro.engine.strategies import (
    ExplorationLimits,
    explore_dfs,
    explore_dfs_sleepsets,
)
from repro.obs import (
    Backtrack,
    CollectingSink,
    DivergenceClassified,
    ExecutionFinished,
    ExecutionStarted,
    ExplorationFinished,
    ExplorationStarted,
    IcbSweep,
    Observer,
    Preemption,
    ProgressReporter,
    SchedulingDecision,
    ViolationFound,
    schedule_from_events,
)
from repro.runtime.api import check as rt_check
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.workloads.dining import (
    dining_philosophers,
    dining_philosophers_livelock,
)


def racy_program():
    """Two threads; one interleaving trips the assertion."""
    def setup(env):
        x = SharedVar(0, name="x")

        def writer():
            yield from x.set(1)
            yield from x.set(2)

        def reader():
            value = yield from x.get()
            rt_check(value != 1, "saw intermediate")

        env.spawn(writer, name="w")
        env.spawn(reader, name="r")

    return VMProgram(setup, name="racy")


class TestDfsTelemetry:
    def test_counters_match_exploration_result(self):
        observer = Observer()
        result = explore_dfs(racy_program(), nonfair_policy(),
                             observer=observer)
        counters = observer.metrics.to_dict()["counters"]
        assert counters["executions"] == result.executions
        assert counters["transitions"] == result.transitions
        assert counters["violations"] == 1
        assert counters["backtracks"] == result.executions - 1
        assert counters["decisions.thread"] > 0

    def test_phase_timers_cover_the_loop(self):
        observer = Observer()
        explore_dfs(racy_program(), fair_policy(), observer=observer)
        assert observer.timers.seconds("policy") > 0
        assert observer.timers.seconds("schedule") > 0
        assert observer.timers.seconds("execute") > 0
        assert "policy" in observer.timers.summary()

    def test_event_stream_shape(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        result = explore_dfs(racy_program(), nonfair_policy(),
                             observer=observer)
        assert len(sink.of_type(ExplorationStarted)) == 1
        assert len(sink.of_type(ExplorationFinished)) == 1
        assert len(sink.of_type(ExecutionStarted)) == result.executions
        assert len(sink.of_type(ExecutionFinished)) == result.executions
        assert len(sink.of_type(ViolationFound)) == 1
        assert sink.of_type(SchedulingDecision)

    def test_trace_is_replay_compatible(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        result = explore_dfs(racy_program(), nonfair_policy(),
                             observer=observer)
        guide = schedule_from_events(sink.events)
        assert guide == result.violations[0].schedule
        replayed = replay_schedule(racy_program(), guide, nonfair_policy(),
                                   ExecutorConfig())
        assert replayed.outcome is Outcome.VIOLATION

    def test_priority_relation_sampled_under_fair_policy(self):
        observer = Observer()
        explore_dfs(dining_philosophers(2), fair_policy(),
                    ExecutorConfig(depth_bound=300), observer=observer)
        hist = observer.metrics.histogram("priority_relation_size")
        assert hist.count > 0
        assert hist.max > 0  # deprioritization edges do appear

    def test_fresh_observer_adds_no_sink_events(self):
        observer = Observer()
        explore_dfs(racy_program(), nonfair_policy(), observer=observer)
        assert observer.sink is None  # metrics-only mode is valid


class TestDivergenceTelemetry:
    def test_livelock_classified_and_counted(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        Checker(dining_philosophers_livelock(2), depth_bound=400,
                observer=observer).run()
        counters = observer.metrics.to_dict()["counters"]
        assert counters["divergences"] == 1
        assert counters["divergence.livelock"] == 1
        events = sink.of_type(DivergenceClassified)
        assert len(events) == 1
        assert events[0].kind == "livelock"
        assert observer.timers.seconds("classify") > 0


class TestPreemptionTelemetry:
    def test_preemptions_counted_when_bounded(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        result = explore_dfs(
            racy_program(), nonfair_policy(),
            ExecutorConfig(preemption_bound=2), observer=observer,
        )
        total = sum(r.preemptions for e in (result.violations,)
                    for r in e)
        counters = observer.metrics.to_dict()["counters"]
        assert counters["preemptions"] == len(sink.of_type(Preemption))
        assert counters["preemptions"] >= total


class TestIcbTelemetry:
    def test_sweep_events_via_checker(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        Checker(racy_program(), strategy="icb", preemption_bound=2,
                fairness=False, observer=observer).run()
        sweeps = sink.of_type(IcbSweep)
        assert sweeps
        assert [e.bound for e in sweeps] == sorted(e.bound for e in sweeps)
        assert observer.metrics.counter("icb.sweeps").value == len(sweeps)


class TestCoverageTelemetry:
    def test_states_new_and_revisited(self):
        observer = Observer()
        coverage = CoverageTracker(observer=observer)
        explore_dfs(dining_philosophers(2), fair_policy(),
                    ExecutorConfig(depth_bound=300), coverage=coverage,
                    observer=observer)
        counters = observer.metrics.to_dict()["counters"]
        assert counters["states.new"] == coverage.count
        assert counters["states.revisited"] > 0


class TestSleepSetTelemetry:
    def test_por_strategy_reports(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        result = explore_dfs_sleepsets(racy_program(), nonfair_policy(),
                                       observer=observer)
        counters = observer.metrics.to_dict()["counters"]
        assert counters["executions"] == result.executions
        assert len(sink.of_type(ExecutionStarted)) == result.executions
        assert observer.timers.seconds("execute") > 0


class TestBacktrackEvents:
    def test_depths_are_recorded(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        explore_dfs(racy_program(), nonfair_policy(),
                    limits=ExplorationLimits(stop_on_first_violation=False),
                    observer=observer)
        events = sink.of_type(Backtrack)
        assert events
        assert all(e.depth >= 1 for e in events)


class TestProgress:
    def test_reporter_rate_limits(self):
        fake_now = [0.0]
        stream = io.StringIO()
        reporter = ProgressReporter(interval_seconds=1.0, stream=stream,
                                    clock=lambda: fake_now[0])
        assert reporter.maybe_report(1, 10)
        assert not reporter.maybe_report(2, 20)  # too soon
        fake_now[0] = 1.5
        assert reporter.maybe_report(3, 30, violations=1)
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert "executions=3" in lines[1]
        assert "violations=1" in lines[1]

    def test_observer_emits_final_progress_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(interval_seconds=1e9, stream=stream)
        observer = Observer(progress=reporter)
        explore_dfs(racy_program(), nonfair_policy(), observer=observer)
        # The interval suppresses per-execution lines, but the end of the
        # exploration always reports.
        assert "[progress]" in stream.getvalue()


class TestObserverReports:
    def test_summary_and_json(self, tmp_path):
        observer = Observer()
        explore_dfs(racy_program(), fair_policy(), observer=observer)
        text = observer.summary()
        assert "phase timings" in text
        assert "executions" in text
        path = observer.dump_json(str(tmp_path / "m.json"))
        import json

        data = json.loads(open(path).read())
        assert data["counters"]["executions"] >= 1
        assert "policy" in data["phases"]

    def test_rates_exported(self):
        observer = Observer()
        explore_dfs(racy_program(), nonfair_policy(), observer=observer)
        gauges = observer.metrics.to_dict()["gauges"]
        assert gauges["wall.seconds"] > 0
        assert gauges["rate.executions_per_second"] > 0
        assert gauges["rate.transitions_per_second"] > 0
