"""Metrics registry: counters, gauges, histograms, timers, export."""

import json

import pytest

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("x")
        g.set(3.5)
        g.set(-1.0)
        assert g.value == -1.0


class TestHistogram:
    def test_summary_statistics(self):
        h = Histogram("sizes")
        for v in (1, 2, 2, 8):
            h.record(v)
        assert h.count == 4
        assert h.total == 13
        assert h.min == 1 and h.max == 8
        assert h.mean == pytest.approx(3.25)

    def test_power_of_two_buckets(self):
        h = Histogram("sizes")
        for v in (1, 2, 3, 4, 0):
            h.record(v)
        d = h.to_dict()
        assert d["buckets"]["2^0"] == 1  # value 1
        assert d["buckets"]["2^1"] == 2  # values 2, 3
        assert d["buckets"]["2^2"] == 1  # value 4
        assert d["buckets"]["<=0"] == 1  # value 0

    def test_empty_histogram(self):
        h = Histogram("empty")
        assert h.mean is None
        assert h.to_dict()["count"] == 0


class TestHistogramPercentiles:
    def test_empty_returns_none(self):
        h = Histogram("p")
        assert h.percentile(50) is None
        assert h.to_dict()["p50"] is None

    def test_out_of_range_raises(self):
        h = Histogram("p")
        h.record(1)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_endpoints_are_exact(self):
        h = Histogram("p")
        for v in (1, 3, 7, 100):
            h.record(v)
        assert h.percentile(0) == 1
        assert h.percentile(100) == 100

    def test_single_value(self):
        h = Histogram("p")
        h.record(5)
        for q in (0, 50, 99, 100):
            assert h.percentile(q) == 5

    def test_interpolation_stays_inside_the_bucket(self):
        h = Histogram("p")
        for v in (1, 2, 3, 4, 5, 6, 7, 8):
            h.record(v)
        p50 = h.percentile(50)
        # Half the mass sits at or below bucket 2^2 = [4, 8); the
        # base-2 estimate must land in that bucket's range.
        assert 2 <= p50 <= 8
        assert h.percentile(95) <= h.max

    def test_estimate_error_bounded_by_bucket_width(self):
        import random

        rng = random.Random(7)
        samples = sorted(rng.uniform(0.001, 0.1) for _ in range(500))
        h = Histogram("p")
        for v in samples:
            h.record(v)
        for q in (50, 95, 99):
            exact = samples[min(int(q / 100 * len(samples)),
                                len(samples) - 1)]
            estimate = h.percentile(q)
            # Base-2 buckets: estimate within one power of two of truth.
            assert exact / 2 <= estimate <= exact * 2

    def test_monotone_in_q(self):
        h = Histogram("p")
        for v in (1, 5, 9, 17, 33, 65):
            h.record(v)
        values = [h.percentile(q) for q in (10, 50, 90, 99)]
        assert values == sorted(values)

    def test_nonpositive_values_use_the_sentinel_bucket(self):
        h = Histogram("p")
        for v in (-4, -2, 0, 8):
            h.record(v)
        assert h.min <= h.percentile(25) <= 0
        assert h.percentile(100) == 8

    def test_to_dict_exports_percentiles(self):
        h = Histogram("p")
        for v in range(1, 101):
            h.record(v)
        d = h.to_dict()
        assert d["p50"] <= d["p95"] <= d["p99"] <= d["max"]


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")
        assert len(reg) == 2

    def test_namespaces_are_per_type(self):
        reg = MetricsRegistry()
        reg.counter("n").inc()
        reg.gauge("n").set(2)
        assert reg.to_dict()["counters"]["n"] == 1
        assert reg.to_dict()["gauges"]["n"] == 2

    def test_timer_records_and_exposes_seconds(self):
        reg = MetricsRegistry()
        with reg.timer("work") as t:
            sum(range(1000))
        assert t.seconds > 0
        hist = reg.histogram("work.seconds")
        assert hist.count == 1
        assert hist.total == pytest.approx(t.seconds)

    def test_dump_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("executions").inc(7)
        reg.gauge("wall.seconds").set(1.25)
        reg.histogram("sizes").record(3)
        path = str(tmp_path / "metrics.json")
        reg.dump_json(path, extra={"phases": {"policy": {"seconds": 0.5}}})
        data = json.loads(open(path).read())
        assert data["counters"]["executions"] == 7
        assert data["gauges"]["wall.seconds"] == 1.25
        assert data["histograms"]["sizes"]["count"] == 1
        assert data["phases"]["policy"]["seconds"] == 0.5

    def test_summary_mentions_every_metric(self):
        reg = MetricsRegistry()
        reg.counter("executions").inc()
        reg.gauge("wall.seconds").set(0.5)
        reg.histogram("sizes").record(2)
        text = reg.summary()
        for name in ("executions", "wall.seconds", "sizes"):
            assert name in text

    def test_empty_summary(self):
        assert "no metrics" in MetricsRegistry().summary()
