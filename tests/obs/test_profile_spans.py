"""Span recorder and Chrome trace-event export."""

import json

from repro.obs.profile import SpanRecorder, chrome_trace_document
from repro.obs.profile.spans import SHARD_LIFECYCLE, Span


class TestSpanRecorder:
    def test_measure_records_a_complete_span(self):
        recorder = SpanRecorder()
        with recorder.measure("work", "executing", shard=3) as span:
            pass
        assert len(recorder) == 1
        assert span.duration is not None and span.duration >= 0
        assert span.args == {"shard": 3}

    def test_measure_records_even_when_the_body_raises(self):
        recorder = SpanRecorder()
        try:
            with recorder.measure("work", "executing"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert len(recorder) == 1
        assert recorder.spans[0].duration is not None

    def test_instant_has_no_duration(self):
        recorder = SpanRecorder()
        span = recorder.instant("merged", "merged", shard=1)
        assert span.duration is None

    def test_sids_are_unique_and_increasing(self):
        recorder = SpanRecorder()
        sids = [recorder.instant(f"i{i}", "merged").sid for i in range(5)]
        assert sids == sorted(set(sids))

    def test_of_category_filters(self):
        recorder = SpanRecorder()
        recorder.instant("a", "merged")
        recorder.instant("b", "requeued")
        assert [s.name for s in recorder.of_category("merged")] == ["a"]

    def test_lifecycle_categories_are_stable(self):
        # docs/profiling.md documents these category names; renames break
        # saved traces.
        assert SHARD_LIFECYCLE == (
            "planned", "assigned", "executing", "merged", "requeued")

    def test_state_round_trip(self):
        recorder = SpanRecorder()
        recorder.add("work", "executing", 100.0, 0.5, pid=0, tid="main",
                     shard=2)
        state = recorder.to_state()
        restored = Span.from_state(state[0])
        assert restored.name == "work"
        assert restored.duration == 0.5
        assert restored.args == {"shard": 2}

    def test_extend_from_state_reassigns_lane_and_sid(self):
        worker = SpanRecorder()
        worker.add("shard 0 executing", "executing", 100.0, 0.5)
        coordinator = SpanRecorder()
        coordinator.instant("planned", "planned")
        merged = coordinator.extend_from_state(
            worker.to_state(), pid=3, lane_name="worker-2")
        assert merged == 1
        span = coordinator.spans[-1]
        assert span.pid == 3
        assert span.args["origin"] == 1  # the worker-local sid
        assert coordinator.lane_names[3] == "worker-2"
        sids = [s.sid for s in coordinator.spans]
        assert len(sids) == len(set(sids))


class TestChromeTrace:
    def build(self):
        recorder = SpanRecorder()
        recorder.add("search", "search", 100.0, 1.0, pid=0)
        recorder.add("shard 0 executing", "executing", 100.2, 0.4, pid=1)
        recorder.instant("shard 0 merged", "merged", pid=0)
        recorder.name_lane(1, "worker-0")
        return recorder

    def test_document_structure(self):
        recorder = self.build()
        doc = chrome_trace_document(
            recorder.spans, lane_names=recorder.lane_names)
        assert doc["displayTimeUnit"] == "ms"
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases == {"M", "X", "i"}
        # One process_name metadata event per lane.
        names = {e["pid"]: e["args"]["name"]
                 for e in events if e["ph"] == "M"}
        assert names[0] == "coordinator"
        assert names[1] == "worker-0"

    def test_timestamps_are_relative_microseconds(self):
        recorder = self.build()
        doc = chrome_trace_document(recorder.spans)
        complete = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        by_name = {e["name"]: e for e in complete}
        import pytest

        assert by_name["search"]["ts"] == 0  # earliest span is the origin
        assert by_name["search"]["dur"] == pytest.approx(1_000_000)
        assert by_name["shard 0 executing"]["ts"] == pytest.approx(200_000)

    def test_instants_are_process_scoped(self):
        recorder = self.build()
        doc = chrome_trace_document(recorder.spans)
        instants = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        assert instants and all(e["s"] == "p" for e in instants)

    def test_phase_totals_become_a_synthetic_track(self):
        recorder = self.build()
        timers = {"execute": {"seconds": 0.3, "samples": 10},
                  "policy": {"seconds": 0.1, "samples": 10}}
        doc = chrome_trace_document(recorder.spans, timers=timers)
        totals = [e for e in doc["traceEvents"]
                  if e.get("tid") == "totals" and e["ph"] == "X"]
        assert {e["name"] for e in totals} == {"execute", "policy"}
        # The synthetic track sits on its own lane above the real ones.
        assert all(e["pid"] > 1 for e in totals)

    def test_document_is_json_serializable(self):
        recorder = self.build()
        recorder.add("odd args", "search", 100.0, 0.1,
                     weird=object())  # non-JSON arg value
        doc = chrome_trace_document(recorder.spans,
                                    metadata={"program": "dining(2)"})
        text = json.dumps(doc)
        assert "dining(2)" in text
