"""JSONL trace reading under corruption: skip-with-warning vs strict."""

import io
import json

import pytest

from repro.obs.events import ExecutionFinished, ExecutionStarted
from repro.obs.trace import JsonlTraceWriter, read_jsonl


def write_trace(tmp_path, *, corrupt=None):
    """A two-event trace, optionally with a corrupt line appended."""
    path = tmp_path / "trace.jsonl"
    writer = JsonlTraceWriter(str(path))
    writer.emit(ExecutionStarted(execution=0))
    writer.emit(ExecutionFinished(execution=0, outcome="terminated",
                                  steps=3, preemptions=0,
                                  hit_depth_bound=False))
    writer.close()
    if corrupt is not None:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(corrupt)
    return str(path)


class TestCorruptTrailingLines:
    def test_clean_trace_round_trips(self, tmp_path):
        events = list(read_jsonl(write_trace(tmp_path)))
        assert len(events) == 2
        assert isinstance(events[0], ExecutionStarted)

    def test_truncated_json_is_skipped_with_a_warning(self, tmp_path):
        # The classic failure: the writer died mid-line (crash, full
        # disk), leaving a syntactically broken last record.
        path = write_trace(tmp_path, corrupt='{"type": "execution.fin')
        with pytest.warns(RuntimeWarning, match="corrupt trace line"):
            events = list(read_jsonl(path))
        assert len(events) == 2  # everything before the damage survives

    def test_unknown_event_type_is_skipped(self, tmp_path):
        path = write_trace(
            tmp_path, corrupt=json.dumps({"type": "not.a.event"}) + "\n")
        with pytest.warns(RuntimeWarning, match="not.a.event"):
            events = list(read_jsonl(path))
        assert len(events) == 2

    def test_warning_names_the_file_and_line(self, tmp_path):
        path = write_trace(tmp_path, corrupt="{broken\n")
        with pytest.warns(RuntimeWarning, match=r"trace\.jsonl:3"):
            list(read_jsonl(path))

    def test_corruption_in_the_middle_keeps_later_events(self, tmp_path):
        lines = [json.dumps({"type": "execution.started", "execution": 0}),
                 "{broken",
                 json.dumps({"type": "execution.started", "execution": 1})]
        with pytest.warns(RuntimeWarning):
            events = list(read_jsonl(lines))
        assert [e.execution for e in events] == [0, 1]

    def test_strict_mode_raises_with_line_number(self, tmp_path):
        path = write_trace(tmp_path, corrupt="{broken\n")
        with pytest.raises(ValueError, match=r":3: corrupt trace line"):
            list(read_jsonl(path, strict=True))

    def test_strict_mode_passes_clean_traces(self, tmp_path):
        assert len(list(read_jsonl(write_trace(tmp_path),
                                   strict=True))) == 2

    def test_stream_source_is_hardened_too(self):
        stream = io.StringIO(
            json.dumps({"type": "execution.started", "execution": 0})
            + "\n{broken\n")
        with pytest.warns(RuntimeWarning, match="<stream>:2"):
            events = list(read_jsonl(stream))
        assert len(events) == 1
