"""Decision-tree cost profiler: unit behavior and engine integration."""

import pytest

from repro.checker import Checker
from repro.obs import Observer
from repro.obs.profile import DecisionProfiler
from repro.workloads.dining import dining_philosophers


class TestDecisionProfilerUnits:
    def test_descend_builds_one_node_per_prefix(self):
        p = DecisionProfiler()
        a = p.descend(p.root, 0)
        b = p.descend(a, 1)
        again = p.descend(p.descend(p.root, 0), 1)
        assert b is again
        assert p.nodes == 3  # root + two children

    def test_enter_walks_an_existing_prefix(self):
        p = DecisionProfiler()
        node = p.enter([0, 1, 0])
        assert node.depth == 3
        assert p.enter([0, 1, 0]) is node

    def test_add_step_accumulates_self_time(self):
        p = DecisionProfiler()
        node = p.enter([0])
        p.add_step(node, 0.25)
        p.add_step(node, 0.25)
        assert node.seconds == pytest.approx(0.5)
        assert node.steps == 2
        assert p.total_seconds == pytest.approx(0.5)

    def test_finish_execution_counts_executions(self):
        p = DecisionProfiler()
        node = p.enter([0])
        p.finish_execution(node, 0.1)
        assert node.executions == 1
        assert p.executions == 1

    def test_depth_cap_accumulates_at_the_cap(self):
        p = DecisionProfiler(max_depth=2)
        node = p.enter([0, 1, 0, 1])  # two levels below the cap
        assert node.depth == 2
        assert p.truncated == 2

    def test_node_cap_stops_allocation(self):
        p = DecisionProfiler(max_nodes=2)  # root + one child
        first = p.descend(p.root, 0)
        second = p.descend(p.root, 1)  # over the cap
        assert second is p.root
        assert p.truncated == 1
        p.add_step(first, 0.1)
        assert p.total_seconds == pytest.approx(0.1)

    def test_invalid_caps_raise(self):
        with pytest.raises(ValueError):
            DecisionProfiler(max_depth=0)
        with pytest.raises(ValueError):
            DecisionProfiler(max_nodes=0)

    def test_folded_output_format(self):
        p = DecisionProfiler()
        p.add_step(p.enter([0]), 0.001)
        p.add_step(p.enter([0, 2]), 0.002)
        lines = p.to_folded().splitlines()
        assert "root;0 1000" in lines
        assert "root;0;2 2000" in lines
        # Self time per line: tools sum descendants into ancestors.
        assert not any(line.startswith("root ") for line in lines)

    def test_folded_drops_sub_threshold_nodes(self):
        p = DecisionProfiler()
        p.add_step(p.enter([0]), 1e-9)
        assert p.to_folded() == ""
        assert p.to_folded(min_self_micros=0) != ""

    def test_hottest_ranks_by_subtree_time(self):
        p = DecisionProfiler()
        p.add_step(p.enter([0]), 0.001)
        p.add_step(p.enter([0, 0]), 0.010)
        p.add_step(p.enter([1]), 0.002)
        ranked = p.hottest(2)
        # root's subtree holds everything; [0]'s subtree beats [1].
        assert ranked[0][0] == ()
        assert ranked[1][0] == (0,)

    def test_to_dict_flattens_the_tree(self):
        p = DecisionProfiler()
        p.add_step(p.enter([0]), 0.001)
        d = p.to_dict()
        assert d["nodes"] == 2
        assert "0" in d["tree"]
        assert d["tree"]["0"]["steps"] == 1


class TestEngineIntegration:
    def run_profiled(self, strategy, **kwargs):
        profiler = DecisionProfiler()
        observer = Observer(profiler=profiler)
        result = Checker(
            dining_philosophers(2),
            strategy=strategy,
            depth_bound=200,
            stop_on_first_violation=False,
            stop_on_first_divergence=False,
            handle_signals=False,
            observer=observer,
            **kwargs,
        ).run()
        return result, profiler

    def test_dfs_populates_the_tree(self):
        result, profiler = self.run_profiled("dfs")
        assert profiler.executions == result.exploration.executions
        assert profiler.nodes > 1
        assert profiler.total_seconds > 0
        # Attributed steps cover every transition the engine ran
        # (replayed prefixes included, so >= the merged transition count).
        attributed = sum(node.steps for _, node in profiler.walk())
        assert attributed >= result.exploration.transitions

    @pytest.mark.parametrize("strategy,kwargs", [
        ("dfs", {}),
        ("bfs", {}),
        ("icb", {"preemption_bound": 2}),
        ("random", {"random_executions": 20}),
        ("por", {}),
    ])
    def test_every_strategy_profiles(self, strategy, kwargs):
        result, profiler = self.run_profiled(
            strategy, max_executions=40, **kwargs)
        assert profiler.executions > 0
        assert profiler.total_seconds > 0
        assert profiler.to_folded() != ""

    def test_snapshot_cache_enters_at_restored_prefix(self):
        # With the cache on, fast-forwarded executions enter() at the
        # restored decision prefix instead of walking from the root —
        # the tree must still be consistent and attribute all steps.
        result, profiler = self.run_profiled(
            "dfs", snapshot_cache=True, snapshot_interval=4,
            max_executions=60)
        assert profiler.executions == result.exploration.executions
        assert profiler.total_seconds > 0
