"""Shared test utilities."""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.policies import PolicyFactory, fair_policy
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.results import ExecutionResult
from repro.runtime.program import VMProgram


def run_once(
    program: VMProgram,
    guide: Sequence[int] = (),
    *,
    policy_factory: Optional[PolicyFactory] = None,
    **config_kwargs,
) -> ExecutionResult:
    """Run a single (guided) execution of a program with the fair policy."""
    factory = policy_factory or fair_policy()
    config = ExecutorConfig(**config_kwargs)
    return run_execution(program, factory(), GuidedChooser(guide), config)


def make_program(setup, name: str = "test-program") -> VMProgram:
    return VMProgram(setup, name=name)


def thread_schedule(record: ExecutionResult) -> list:
    """The sequence of thread names scheduled, from the recorded trace."""
    return [step.thread_name for step in record.trace]
