"""Shared test utilities, including the coverage oracle.

The oracle half of this module validates stateless partial-order
strategies against a *stateful* ground-truth search
(:func:`repro.statespace.stateful.stateful_search`): a reduction is only
correct if it still reaches every reachable terminal state and reports
every violation the unreduced search reports.  The comparison runs every
strategy under the memoryless nonfair policy — stateful pruning is only
sound there, and reduction claims are policy-relative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.core.policies import PolicyFactory, fair_policy, nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.results import ExecutionResult, Outcome
from repro.engine.strategies import (
    DfsStrategy,
    DporStrategy,
    ExplorationLimits,
    SleepSetStrategy,
)
from repro.runtime.program import VMProgram
from repro.statespace.stateful import GroundTruth, stateful_search


def run_once(
    program: VMProgram,
    guide: Sequence[int] = (),
    *,
    policy_factory: Optional[PolicyFactory] = None,
    **config_kwargs,
) -> ExecutionResult:
    """Run a single (guided) execution of a program with the fair policy."""
    factory = policy_factory or fair_policy()
    config = ExecutorConfig(**config_kwargs)
    return run_execution(program, factory(), GuidedChooser(guide), config)


def make_program(setup, name: str = "test-program") -> VMProgram:
    return VMProgram(setup, name=name)


def thread_schedule(record: ExecutionResult) -> list:
    """The sequence of thread names scheduled, from the recorded trace."""
    return [step.thread_name for step in record.trace]


# ----------------------------------------------------------------------
# coverage oracle
# ----------------------------------------------------------------------
@dataclass
class CoverageReport:
    """What one stateless strategy actually covered, for oracle checks."""

    strategy: str
    executions: int
    transitions: int
    #: Every state signature touched along any explored execution.
    states: FrozenSet
    #: Signatures of final states of TERMINATED/DEADLOCK executions
    #: (None when the strategy's runner cannot expose final instances —
    #: the sleep-set walker).
    terminal_states: Optional[FrozenSet]
    #: The deadlocked subset of ``terminal_states``.
    deadlock_states: Optional[FrozenSet]
    #: Distinct violation messages reported.
    violation_messages: FrozenSet
    complete: bool


def ground_truth(program, **kwargs) -> GroundTruth:
    """The stateful oracle: full verdict inventory of the state space."""
    return stateful_search(program, **kwargs)


_ORACLE_LIMITS = dict(stop_on_first_violation=False,
                      stop_on_first_divergence=False)


def dpor_coverage(
    program,
    *,
    policy_factory: Optional[PolicyFactory] = None,
    depth_bound: Optional[int] = 500,
    max_executions: Optional[int] = None,
) -> CoverageReport:
    """Run source-DPOR to exhaustion, collecting everything it covered."""
    factory = policy_factory or nonfair_policy()
    coverage = CoverageTracker()
    terminal = set()
    deadlocked = set()
    violations = set()

    def on_final_state(instance, outcome) -> None:
        signature = instance.state_signature()
        terminal.add(signature)
        if outcome is Outcome.DEADLOCK:
            deadlocked.add(signature)

    def listener(record: ExecutionResult) -> None:
        if record.outcome is Outcome.VIOLATION:
            violations.add(str(record.violation))

    result = DporStrategy(
        program, factory,
        depth_bound=depth_bound,
        limits=ExplorationLimits(max_executions=max_executions,
                                 **_ORACLE_LIMITS),
        coverage=coverage,
        listener=listener,
        on_final_state=on_final_state,
    ).explore()
    return CoverageReport(
        strategy="dpor",
        executions=result.executions,
        transitions=result.transitions,
        states=frozenset(coverage.signatures()),
        terminal_states=frozenset(terminal),
        deadlock_states=frozenset(deadlocked),
        violation_messages=frozenset(violations),
        complete=result.complete,
    )


def dfs_coverage(
    program,
    *,
    policy_factory: Optional[PolicyFactory] = None,
    depth_bound: Optional[int] = 500,
    max_executions: Optional[int] = None,
) -> CoverageReport:
    """Unreduced DFS with final-instance bookkeeping (oracle calibration:
    its terminal sets must equal the stateful search's)."""
    factory = policy_factory or nonfair_policy()
    coverage = CoverageTracker()
    terminal = set()
    deadlocked = set()
    violations = set()

    def listener(record: ExecutionResult) -> None:
        if record.outcome in (Outcome.TERMINATED, Outcome.DEADLOCK):
            signature = record.final_instance.state_signature()
            terminal.add(signature)
            if record.outcome is Outcome.DEADLOCK:
                deadlocked.add(signature)
        elif record.outcome is Outcome.VIOLATION:
            violations.add(str(record.violation))

    config = ExecutorConfig(depth_bound=depth_bound,
                            on_depth_exceeded="prune",
                            keep_instance=True)
    result = DfsStrategy(
        program, factory, config,
        ExplorationLimits(max_executions=max_executions, **_ORACLE_LIMITS),
        coverage=coverage,
        listener=listener,
    ).explore()
    return CoverageReport(
        strategy="dfs",
        executions=result.executions,
        transitions=result.transitions,
        states=frozenset(coverage.signatures()),
        terminal_states=frozenset(terminal),
        deadlock_states=frozenset(deadlocked),
        violation_messages=frozenset(violations),
        complete=result.complete,
    )


def sleepset_coverage(
    program,
    *,
    policy_factory: Optional[PolicyFactory] = None,
    depth_bound: Optional[int] = 500,
    max_executions: Optional[int] = None,
) -> CoverageReport:
    """Sleep-set POR coverage.  Sleep sets prune redundant *transitions*,
    never states, so its ``states`` must equal the ground truth's — the
    por audit.  Its runner keeps no final instances, so the terminal sets
    are None."""
    factory = policy_factory or nonfair_policy()
    coverage = CoverageTracker()
    violations = set()

    def listener(record: ExecutionResult) -> None:
        if record.outcome is Outcome.VIOLATION:
            violations.add(str(record.violation))

    result = SleepSetStrategy(
        program, factory,
        depth_bound=depth_bound,
        limits=ExplorationLimits(max_executions=max_executions,
                                 **_ORACLE_LIMITS),
        coverage=coverage,
        listener=listener,
    ).explore()
    return CoverageReport(
        strategy="por",
        executions=result.executions,
        transitions=result.transitions,
        states=frozenset(coverage.signatures()),
        terminal_states=None,
        deadlock_states=None,
        violation_messages=frozenset(violations),
        complete=result.complete,
    )


def assert_dpor_matches_ground_truth(
    program,
    *,
    depth_bound: Optional[int] = 500,
    check_sleepset: bool = True,
) -> Tuple[GroundTruth, CoverageReport, Optional[CoverageReport]]:
    """The oracle assertion: source-DPOR misses nothing the stateful
    search finds, and never does more work than sleep sets.

    Returns ``(truth, dpor, por)`` so callers can pile on
    workload-specific assertions (e.g. strictness of the reduction).
    """
    truth = ground_truth(program)
    assert truth.complete, "ground truth must exhaust the state space"
    dpor = dpor_coverage(program, depth_bound=depth_bound)
    assert dpor.complete, "dpor must exhaust its (reduced) tree"
    assert dpor.terminal_states == truth.terminal_states, (
        f"dpor missed terminal states: "
        f"{truth.terminal_states - dpor.terminal_states} "
        f"(and invented {dpor.terminal_states - truth.terminal_states})")
    assert dpor.deadlock_states == truth.deadlock_states
    assert dpor.violation_messages == truth.violation_messages, (
        f"dpor violations {dpor.violation_messages} != "
        f"ground truth {truth.violation_messages}")
    assert dpor.states <= truth.states, (
        "dpor visited states the stateful search considers unreachable")
    por = None
    if check_sleepset:
        por = sleepset_coverage(program, depth_bound=depth_bound)
        assert por.complete
        assert dpor.executions <= por.executions, (
            f"dpor ran {dpor.executions} executions, sleep sets only "
            f"{por.executions} — the reduction regressed")
        assert por.violation_messages == truth.violation_messages
    return truth, dpor, por
