"""Unit tests for the priority relation ``P`` of Algorithm 1."""

import pytest

from repro.core.priority import PriorityRelation


class TestEdges:
    def test_empty_relation_blocks_nothing(self):
        relation = PriorityRelation()
        assert relation.schedulable(frozenset({1, 2})) == frozenset({1, 2})
        assert not relation

    def test_edge_blocks_source_while_sink_enabled(self):
        relation = PriorityRelation([("t", "u")])
        assert relation.schedulable(frozenset({"t", "u"})) == frozenset({"u"})

    def test_edge_does_not_block_when_sink_disabled(self):
        # (t, u) means: t runs only when u is disabled.
        relation = PriorityRelation([("t", "u")])
        assert relation.schedulable(frozenset({"t"})) == frozenset({"t"})

    def test_self_edge_rejected(self):
        relation = PriorityRelation()
        with pytest.raises(ValueError):
            relation.add_edge("t", "t")

    def test_add_edges_skips_self(self):
        relation = PriorityRelation()
        relation.add_edges("t", {"t", "u", "v"})
        assert ("t", "u") in relation
        assert ("t", "v") in relation
        assert ("t", "t") not in relation

    def test_contains_and_edge_count(self):
        relation = PriorityRelation([("a", "b"), ("a", "c"), ("b", "c")])
        assert ("a", "b") in relation
        assert ("b", "a") not in relation
        assert relation.edge_count() == 3


class TestRemoveSink:
    def test_remove_sink_releases_blocked_threads(self):
        relation = PriorityRelation([("t", "u"), ("v", "u")])
        assert relation.schedulable(frozenset({"t", "u", "v"})) == frozenset({"u"})
        relation.remove_sink("u")
        assert relation.schedulable(frozenset({"t", "u", "v"})) == frozenset(
            {"t", "u", "v"}
        )

    def test_remove_sink_keeps_other_edges(self):
        relation = PriorityRelation([("t", "u"), ("t", "v")])
        relation.remove_sink("u")
        assert ("t", "v") in relation
        assert ("t", "u") not in relation

    def test_remove_sink_of_unknown_thread_is_noop(self):
        relation = PriorityRelation([("t", "u")])
        relation.remove_sink("zebra")
        assert ("t", "u") in relation


class TestBlocked:
    def test_pre_definition(self):
        # pre(R, X) = {x | exists y: (x, y) in R and y in X}
        relation = PriorityRelation([("a", "b"), ("c", "d")])
        assert relation.blocked(frozenset({"b"})) == {"a"}
        assert relation.blocked(frozenset({"d"})) == {"c"}
        assert relation.blocked(frozenset({"b", "d"})) == {"a", "c"}
        assert relation.blocked(frozenset({"a", "c"})) == set()

    def test_schedulable_never_empty_for_acyclic_relation(self):
        # Theorem 3's engine: an acyclic priority relation always leaves a
        # maximal (schedulable) element in any nonempty enabled set.
        relation = PriorityRelation([("a", "b"), ("b", "c"), ("a", "c")])
        for enabled in [{"a"}, {"a", "b"}, {"a", "b", "c"}, {"b", "c"}]:
            assert relation.schedulable(frozenset(enabled))


class TestAcyclicity:
    def test_empty_is_acyclic(self):
        assert PriorityRelation().is_acyclic()

    def test_chain_is_acyclic(self):
        assert PriorityRelation([("a", "b"), ("b", "c")]).is_acyclic()

    def test_two_cycle_detected(self):
        assert not PriorityRelation([("a", "b"), ("b", "a")]).is_acyclic()

    def test_long_cycle_detected(self):
        relation = PriorityRelation([("a", "b"), ("b", "c"), ("c", "a")])
        assert not relation.is_acyclic()

    def test_diamond_is_acyclic(self):
        relation = PriorityRelation(
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        assert relation.is_acyclic()


class TestCopyAndEquality:
    def test_copy_is_independent(self):
        relation = PriorityRelation([("a", "b")])
        clone = relation.copy()
        clone.add_edge("b", "c")
        assert ("b", "c") not in relation
        assert ("a", "b") in clone

    def test_equality_by_edge_set(self):
        left = PriorityRelation([("a", "b"), ("c", "d")])
        right = PriorityRelation([("c", "d"), ("a", "b")])
        assert left == right
        right.add_edge("x", "y")
        assert left != right

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(PriorityRelation())
