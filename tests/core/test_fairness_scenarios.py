"""End-to-end fairness scenarios from the Section 3 narrative.

After the Figure 4 walkthrough the paper generalizes: "if the thread t
was not enabled in the state (a,c), say if t was waiting on a lock
currently held by u, the scheduler will continue to schedule u till it
releases the lock.  Further, if t was waiting on a lock held by some
other thread v in the program, the fairness algorithm will guarantee
that eventually v makes progress releasing the lock."  These tests run
exactly those configurations against a maximally adversarial chooser
(always prefer the spinner) and check that the fair scheduler drives the
program to termination anyway — transitively through the lock holder.
"""

from repro.core.policies import FairPolicy, NonfairPolicy
from repro.engine.executor import Chooser, ExecutorConfig, run_execution
from repro.engine.results import Outcome
from repro.runtime.api import yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.mutex import Mutex


class PreferSpinner(Chooser):
    """Always pick the highest-numbered schedulable thread (the spinner
    is spawned last in these programs)."""

    def pick(self, kind, options):
        return options - 1


def writer_blocked_on_holder():
    """u spins on x; t (the writer) must first take a lock held by v."""

    def setup(env):
        x = SharedVar(0, name="x")
        v_holds_lock = SharedVar(False, name="v-holds")
        lock = Mutex(name="L")

        def v():
            yield from lock.acquire()
            yield from v_holds_lock.set(True)
            yield from yield_now()  # dawdle while holding the lock
            yield from yield_now()
            yield from lock.release()

        def t():
            # Ensure the narrative's configuration: v holds the lock
            # before t asks for it.
            while not (yield from v_holds_lock.get()):
                yield from yield_now()
            yield from lock.acquire()  # blocked until v releases
            yield from x.set(1)
            yield from lock.release()

        def u():
            while (yield from x.get()) != 1:
                yield from yield_now()

        env.spawn(v, name="v")
        env.spawn(t, name="t")
        env.spawn(u, name="u")

    return VMProgram(setup, name="transitive-progress")


class TestTransitiveProgress:
    def test_fair_scheduler_drives_the_chain(self):
        """Even preferring the spinner at every choice, fairness forces v
        to release, then t to write, then u to exit."""
        record = run_execution(
            writer_blocked_on_holder(), FairPolicy(), PreferSpinner(),
            ExecutorConfig(depth_bound=300),
        )
        assert record.outcome is Outcome.TERMINATED
        names = [step.thread_name for step in record.trace]
        # All three threads were eventually scheduled.
        assert {"u", "t", "v"} <= set(names)
        # v's release precedes t's store, which precedes u's exit.
        operations = [(s.thread_name, s.operation) for s in record.trace]
        release_at = operations.index(("v", "release(L)"))
        store_at = operations.index(("t", "store(x, 1)"))
        assert release_at < store_at

    def test_unfair_scheduler_spins_forever(self):
        """The same adversarial chooser without fairness never leaves the
        spin loop — the configuration the paper contrasts against."""
        record = run_execution(
            writer_blocked_on_holder(), NonfairPolicy(), PreferSpinner(),
            ExecutorConfig(depth_bound=300, on_depth_exceeded="prune"),
        )
        assert record.outcome is Outcome.DEPTH_PRUNED
        names = {step.thread_name for step in record.trace}
        assert names == {"u"}  # everyone else starved

    def test_disabled_waiter_does_not_accrue_edges(self):
        """While t is disabled (blocked on the lock), a spinner's yields
        must not blame t — edges only target threads in E(u) ∪ D(u)."""
        from repro.runtime.api import yield_now as _yield
        from repro.sync.mutex import Mutex as _Mutex

        def setup(env):
            lock = _Mutex(name="L")

            def v():
                yield from lock.acquire()
                for _ in range(10):
                    yield from _yield()
                yield from lock.release()

            def t():
                yield from lock.acquire()
                yield from lock.release()

            def u():
                for _ in range(10):
                    yield from _yield()

            env.spawn(v, name="v")
            env.spawn(t, name="t")
            env.spawn(u, name="u")

        program = VMProgram(setup, name="edge-targets")
        policy = FairPolicy()
        instance = program.instantiate()
        for tid in sorted(instance.thread_ids()):
            policy.register_thread(tid)
        # v: start + acquire; t: start (now pending the blocked acquire).
        policy.observe_step(instance.step(0))
        policy.observe_step(instance.step(0))
        policy.observe_step(instance.step(1))
        assert 1 not in instance.enabled_threads()  # t is disabled
        # u spins through several windows while t stays disabled.
        for _ in range(6):
            enabled = instance.enabled_threads()
            if 2 not in policy.schedulable(enabled):
                break
            policy.observe_step(instance.step(2))
        edges = set(policy.algorithm_state.priority.edges())
        # u is deprioritized below the enabled-but-starved v, but never
        # below the disabled t (t ∉ E(u) and u never disabled t).
        assert (2, 0) in edges
        assert (2, 1) not in edges
