"""Unit tests for the Algorithm 1 state machine."""

import pytest

from repro.core.fairness import FairSchedulerState
from repro.core.model import StepInfo


def step(tid, before, after, yielded=False, spawned=()):
    return StepInfo(
        tid=tid,
        enabled_before=frozenset(before),
        enabled_after=frozenset(after),
        yielded=yielded,
        spawned=tuple(spawned),
    )


class TestInitialization:
    def test_initial_windows_closed(self):
        state = FairSchedulerState(["t", "u"])
        assert not state.window_open("t")
        # Closed window encodes E = {} and D = S = Tid.
        assert state.continuously_enabled("t") == frozenset()
        assert state.disabled_by("t") == frozenset({"t", "u"})
        assert state.scheduled_since_yield("t") == frozenset({"t", "u"})

    def test_initially_all_schedulable(self):
        state = FairSchedulerState(["t", "u"])
        assert state.schedulable(frozenset({"t", "u"})) == frozenset({"t", "u"})

    def test_register_twice_is_idempotent(self):
        state = FairSchedulerState(["t"])
        state.observe_step(step("t", {"t"}, {"t"}, yielded=True))
        assert state.window_open("t")
        state.register_thread("t")
        assert state.window_open("t")  # re-registration must not reset


class TestFirstYield:
    def test_first_yield_adds_no_edges(self):
        # The paper's initialization guarantees the update of P at the
        # first yield of any thread leaves P unchanged.
        state = FairSchedulerState(["t", "u"])
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        assert not state.priority
        assert state.window_open("u")

    def test_first_yield_opens_window(self):
        state = FairSchedulerState(["t", "u"])
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        assert state.continuously_enabled("u") == frozenset({"t", "u"})
        assert state.disabled_by("u") == frozenset()
        assert state.scheduled_since_yield("u") == frozenset()


class TestWindowTracking:
    def make_open_window(self):
        state = FairSchedulerState(["t", "u"])
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        return state

    def test_scheduled_set_accumulates(self):
        state = self.make_open_window()
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}))
        assert state.scheduled_since_yield("u") == frozenset({"u"})
        state.observe_step(step("t", {"t", "u"}, {"t", "u"}))
        assert state.scheduled_since_yield("u") == frozenset({"t", "u"})

    def test_continuously_enabled_shrinks(self):
        state = self.make_open_window()
        # t becomes disabled by u's transition: drops out of E(u) forever
        # within this window, even if re-enabled later.
        state.observe_step(step("u", {"t", "u"}, {"u"}))
        assert state.continuously_enabled("u") == frozenset({"u"})
        state.observe_step(step("u", {"u"}, {"t", "u"}))
        assert state.continuously_enabled("u") == frozenset({"u"})

    def test_disabled_by_tracks_own_transitions_only(self):
        state = FairSchedulerState(["t", "u", "v"])
        for tid in ("u", "v"):
            state.observe_step(
                step(tid, {"t", "u", "v"}, {"t", "u", "v"}, yielded=True)
            )
        # u's transition disables t: recorded in D(u) only.
        state.observe_step(step("u", {"t", "u", "v"}, {"u", "v"}))
        assert state.disabled_by("u") == frozenset({"t"})
        assert state.disabled_by("v") == frozenset()


class TestEdgeInsertion:
    def test_second_yield_blames_unscheduled_enabled_thread(self):
        state = FairSchedulerState(["t", "u"])
        # First yield of u opens the window.
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        # u runs again (t continuously enabled, never scheduled)...
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}))
        # ... and yields: H = (E ∪ D) \ S = {t,u} \ {u} = {t}.
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        assert ("u", "t") in state.priority
        assert state.schedulable(frozenset({"t", "u"})) == frozenset({"t"})

    def test_blames_thread_it_disabled(self):
        state = FairSchedulerState(["t", "u"])
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        # u disables t (e.g. takes a lock t was about to get)...
        state.observe_step(step("u", {"t", "u"}, {"u"}))
        # ... then yields; t is in D(u) though no longer enabled.
        state.observe_step(step("u", {"u"}, {"u"}, yielded=True))
        assert ("u", "t") in state.priority
        # The edge only bites when t is enabled again:
        assert state.schedulable(frozenset({"u"})) == frozenset({"u"})
        assert state.schedulable(frozenset({"t", "u"})) == frozenset({"t"})

    def test_no_edge_for_scheduled_thread(self):
        state = FairSchedulerState(["t", "u"])
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        state.observe_step(step("t", {"t", "u"}, {"t", "u"}))
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        # t was scheduled inside u's window: no blame.
        assert not state.priority

    def test_scheduling_removes_incoming_edges(self):
        state = FairSchedulerState(["t", "u"])
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}))
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        assert ("u", "t") in state.priority
        # Scheduling t removes all edges with sink t (line 13).
        state.observe_step(step("t", {"t", "u"}, {"t", "u"}))
        assert ("u", "t") not in state.priority

    def test_thread_never_blames_itself(self):
        state = FairSchedulerState(["t"])
        for _ in range(5):
            state.observe_step(step("t", {"t"}, {"t"}, yielded=True))
        assert not state.priority

    def test_priority_stays_acyclic_with_checking(self):
        state = FairSchedulerState(["a", "b", "c"], check_acyclic=True)
        # Open all windows, then yield in rotation; no AssertionError means
        # the Theorem 3 invariant held throughout.
        everyone = {"a", "b", "c"}
        for tid in ("a", "b", "c"):
            state.observe_step(step(tid, everyone, everyone, yielded=True))
        for tid in ("a", "b", "c", "a", "b", "c"):
            state.observe_step(step(tid, everyone, everyone, yielded=True))
        assert state.priority.is_acyclic()


class TestDynamicThreads:
    def test_spawned_thread_registered_with_closed_window(self):
        state = FairSchedulerState(["t"])
        state.observe_step(step("t", {"t"}, {"t", "u"}, spawned=("u",)))
        assert "u" in state.known_threads()
        assert not state.window_open("u")

    def test_spawned_thread_first_yield_adds_no_edges(self):
        state = FairSchedulerState(["t"])
        state.observe_step(step("t", {"t"}, {"t", "u"}, spawned=("u",)))
        state.observe_step(step("u", {"t", "u"}, {"t", "u"}, yielded=True))
        assert not state.priority

    def test_unknown_scheduler_thread_auto_registered(self):
        state = FairSchedulerState()
        state.observe_step(step("x", {"x"}, {"x"}))
        assert "x" in state.known_threads()


class TestSnapshot:
    def test_snapshot_shape(self):
        state = FairSchedulerState(["t", "u"])
        snap = state.snapshot()
        assert set(snap) == {"P", "E", "D", "S"}
        assert snap["P"] == []
        assert snap["E"]["t"] == []
        assert sorted(snap["D"]["t"]) == ["t", "u"]
