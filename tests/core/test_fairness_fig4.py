"""Figure 4: the paper's step-by-step emulation of Algorithm 1.

The emulation runs thread ``u`` of the Figure 3 program continuously and
tracks P, S(u), D(u), E(u).  We check every annotated state, first against
the abstract :class:`FairSchedulerState` and then end-to-end through the
VM running the real spin-loop workload.
"""

from repro.core.fairness import FairSchedulerState
from repro.core.model import StepInfo
from repro.core.policies import FairPolicy
from repro.engine.executor import Chooser, ExecutorConfig, run_execution
from repro.engine.results import Outcome
from repro.workloads.spinloop import spinloop

BOTH = frozenset({"t", "u"})


def u_step(yielded):
    return StepInfo(tid="u", enabled_before=BOTH, enabled_after=BOTH,
                    yielded=yielded)


def test_figure4_emulation_exact():
    state = FairSchedulerState(["t", "u"])

    # State (a,c): S(u) = D(u) = {t,u} (closed window), E(u) = {}, P = {}.
    assert state.scheduled_since_yield("u") == BOTH
    assert state.disabled_by("u") == BOTH
    assert state.continuously_enabled("u") == frozenset()
    assert not state.priority

    # u: while (x != 1)   ->  (a,d); predicates unchanged.
    state.observe_step(u_step(yielded=False))
    assert state.scheduled_since_yield("u") == BOTH
    assert state.disabled_by("u") == BOTH
    assert state.continuously_enabled("u") == frozenset()
    assert not state.priority

    # u: yield()  ->  (a,c); first window of u begins, P unchanged.
    state.observe_step(u_step(yielded=True))
    assert state.scheduled_since_yield("u") == frozenset()
    assert state.disabled_by("u") == frozenset()
    assert state.continuously_enabled("u") == BOTH
    assert not state.priority

    # u: while (x != 1)  ->  (a,d); S(u) = {u}.
    state.observe_step(u_step(yielded=False))
    assert state.scheduled_since_yield("u") == frozenset({"u"})
    assert state.disabled_by("u") == frozenset()
    assert state.continuously_enabled("u") == BOTH
    assert not state.priority
    # The relation is still empty: the scheduler may pick either thread.
    assert state.schedulable(BOTH) == BOTH

    # u: yield()  ->  (a,c); H = {t}, so the edge (u, t) is added.
    state.observe_step(u_step(yielded=True))
    assert set(state.priority.edges()) == {("u", "t")}
    assert state.scheduled_since_yield("u") == frozenset()
    assert state.disabled_by("u") == frozenset()
    assert state.continuously_enabled("u") == BOTH

    # The scheduler is now forced to schedule t.
    assert state.schedulable(BOTH) == frozenset({"t"})


class PreferU(Chooser):
    """A demonic chooser that schedules thread ``u`` whenever allowed."""

    def __init__(self, instance):
        self.instance = instance
        self.u_runs_before_t = 0
        self.t_seen = False

    def pick(self, kind, options):
        # Options are sorted thread ids; with two initial threads, tid 1
        # is u.  Prefer the highest tid (u).
        return options - 1


def test_figure4_end_to_end_scheduler_forces_t():
    """Running the real Figure 3 program, a scheduler that always prefers
    ``u`` is eventually forced to run ``t`` — so the program terminates."""
    program = spinloop()
    instance_holder = {}
    policy = FairPolicy()

    class GreedyU(Chooser):
        def pick(self, kind, options):
            return options - 1

    record = run_execution(
        program, policy, GreedyU(), ExecutorConfig(depth_bound=200),
    )
    assert record.outcome is Outcome.TERMINATED
    names = [step.thread_name for step in record.trace]
    # t must have been forced in eventually.
    assert "t" in names
    # u runs its first window unconstrained: start, read, yield, read,
    # yield — after the second yield the priority edge forces t.  Allow a
    # little slack but require that u could not run unboundedly.
    first_t = names.index("t")
    assert first_t <= 6
    # And u's spin is what precedes it.
    assert set(names[:first_t]) == {"u"}
