"""Scheduling policy tests."""

from repro.core.model import StepInfo
from repro.core.policies import (
    FairPolicy,
    NonfairPolicy,
    RoundRobinPolicy,
    fair_policy,
    nonfair_policy,
    round_robin_policy,
)

BOTH = frozenset({"t", "u"})


def step(tid, yielded=False, before=BOTH, after=BOTH):
    return StepInfo(tid=tid, enabled_before=frozenset(before),
                    enabled_after=frozenset(after), yielded=yielded)


class TestNonfair:
    def test_everything_schedulable(self):
        policy = NonfairPolicy()
        policy.register_thread("t")
        assert policy.schedulable(BOTH) == BOTH
        policy.observe_step(step("t", yielded=True))
        assert policy.schedulable(BOTH) == BOTH

    def test_not_fair(self):
        assert not NonfairPolicy.is_fair
        assert FairPolicy.is_fair


class TestFairPolicy:
    def starve_t(self, policy, rounds):
        """Run u through `rounds` yield-terminated windows."""
        for _ in range(rounds):
            policy.observe_step(step("u"))
            policy.observe_step(step("u", yielded=True))

    def test_k1_deprioritizes_after_second_yield(self):
        policy = FairPolicy()
        for tid in ("t", "u"):
            policy.register_thread(tid)
        self.starve_t(policy, 2)
        assert policy.schedulable(BOTH) == frozenset({"t"})

    def test_k2_needs_twice_as_many_yields(self):
        policy = FairPolicy(k=2)
        for tid in ("t", "u"):
            policy.register_thread(tid)
        # With k=2, only every 2nd yield is processed: after 2 windows
        # only one yield has been processed (window opened), no edge yet.
        self.starve_t(policy, 2)
        assert policy.schedulable(BOTH) == BOTH
        # Two more windows: the 4th yield is the 2nd processed — edge.
        self.starve_t(policy, 2)
        assert policy.schedulable(BOTH) == frozenset({"t"})

    def test_invalid_k_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            FairPolicy(k=0)

    def test_fairness_blocked(self):
        policy = FairPolicy()
        for tid in ("t", "u"):
            policy.register_thread(tid)
        assert not policy.fairness_blocked("u", BOTH)
        self.starve_t(policy, 2)
        assert policy.fairness_blocked("u", BOTH)
        assert not policy.fairness_blocked("t", BOTH)
        # A disabled thread is not "fairness blocked".
        assert not policy.fairness_blocked("u", frozenset({"t"}))

    def test_name_reflects_k(self):
        assert FairPolicy().name == "fair"
        assert FairPolicy(k=3).name == "fair(k=3)"


class TestRoundRobin:
    def test_single_choice_rotation(self):
        policy = RoundRobinPolicy()
        for tid in ("a", "b", "c"):
            policy.register_thread(tid)
        everyone = frozenset({"a", "b", "c"})
        assert policy.schedulable(everyone) == frozenset({"a"})
        policy.observe_step(step("a", before=everyone, after=everyone))
        assert policy.schedulable(everyone) == frozenset({"b"})
        policy.observe_step(step("b", before=everyone, after=everyone))
        assert policy.schedulable(everyone) == frozenset({"c"})
        policy.observe_step(step("c", before=everyone, after=everyone))
        assert policy.schedulable(everyone) == frozenset({"a"})

    def test_skips_disabled(self):
        policy = RoundRobinPolicy()
        for tid in ("a", "b", "c"):
            policy.register_thread(tid)
        policy.observe_step(step("a"))
        assert policy.schedulable(frozenset({"a", "c"})) == frozenset({"c"})

    def test_empty_enabled(self):
        assert RoundRobinPolicy().schedulable(frozenset()) == frozenset()


class TestSnapshotProtocol:
    """snapshot_state/restore_state round-trips (engine/snapshots.py)."""

    def test_nonfair_is_stateless(self):
        policy = NonfairPolicy()
        state = policy.snapshot_state()
        policy.restore_state(state)
        assert policy.schedulable(BOTH) == BOTH

    def test_fair_round_trip_restores_priority_and_windows(self):
        policy = FairPolicy(k=2)
        for tid in ("t", "u"):
            policy.register_thread(tid)
        # Starve t far enough to add a (u, t) edge under k=2.
        for _ in range(4):
            policy.observe_step(step("u"))
            policy.observe_step(step("u", yielded=True))
        assert policy.schedulable(BOTH) == frozenset({"t"})
        state = policy.snapshot_state()

        # Mutate past the snapshot: scheduling t drops the edge.
        policy.observe_step(step("t"))
        assert policy.schedulable(BOTH) == BOTH

        fresh = FairPolicy(k=2)
        fresh.restore_state(state)
        assert fresh.schedulable(BOTH) == frozenset({"t"})
        assert fresh.algorithm_state.priority != policy.algorithm_state.priority
        assert fresh.algorithm_state.window_open("u")
        assert not fresh.algorithm_state.window_open("t")
        assert fresh.algorithm_state.continuously_enabled("u") == BOTH

    def test_fair_snapshot_is_isolated_from_later_mutation(self):
        # The captured value must not alias live mutable state: steps
        # taken after the snapshot may not leak into it (the cache keeps
        # snapshots around across many executions).
        policy = FairPolicy()
        for tid in ("t", "u"):
            policy.register_thread(tid)
        state = policy.snapshot_state()
        for _ in range(2):
            policy.observe_step(step("u"))
            policy.observe_step(step("u", yielded=True))
        assert policy.schedulable(BOTH) == frozenset({"t"})
        restored = FairPolicy()
        restored.restore_state(state)
        assert restored.schedulable(BOTH) == BOTH

    def test_round_robin_round_trip(self):
        policy = RoundRobinPolicy()
        for tid in ("a", "b"):
            policy.register_thread(tid)
        policy.observe_step(step("a"))
        state = policy.snapshot_state()
        policy.observe_step(step("b"))
        fresh = RoundRobinPolicy()
        fresh.restore_state(state)
        assert fresh.schedulable(frozenset({"a", "b"})) == frozenset({"b"})


class TestFactories:
    def test_factories_produce_fresh_policies(self):
        factory = fair_policy()
        first, second = factory(), factory()
        assert first is not second
        assert isinstance(nonfair_policy()(), NonfairPolicy)
        assert isinstance(round_robin_policy()(), RoundRobinPolicy)
