"""Abstract model interface tests."""

import pytest

from repro.core.model import Program, ProgramInstance, RunStatus, StepInfo


class TestStepInfo:
    def test_defaults(self):
        info = StepInfo(tid=1, enabled_before=frozenset({1}),
                        enabled_after=frozenset(), yielded=False)
        assert info.spawned == ()
        assert info.operation == ""

    def test_frozen(self):
        info = StepInfo(tid=1, enabled_before=frozenset(),
                        enabled_after=frozenset(), yielded=True)
        with pytest.raises(Exception):
            info.tid = 2


class TestStatusDerivation:
    class FakeInstance(ProgramInstance):
        def __init__(self, enabled, live):
            self._enabled = frozenset(enabled)
            self._live = live

        def thread_ids(self):
            return frozenset({0})

        def enabled_threads(self):
            return self._enabled

        def is_yielding(self, tid):
            return False

        def step(self, tid):
            raise NotImplementedError

        def has_live_threads(self):
            return self._live

    def test_running(self):
        assert self.FakeInstance({0}, True).status() is RunStatus.RUNNING

    def test_terminated(self):
        assert self.FakeInstance((), False).status() is RunStatus.TERMINATED

    def test_deadlock(self):
        assert self.FakeInstance((), True).status() is RunStatus.DEADLOCK

    def test_default_signature_is_none(self):
        assert self.FakeInstance((), False).state_signature() is None


class TestAbstractness:
    def test_program_cannot_instantiate(self):
        with pytest.raises(TypeError):
            Program()

    def test_instance_cannot_instantiate(self):
        with pytest.raises(TypeError):
            ProgramInstance()
