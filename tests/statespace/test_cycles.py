"""Cycle analysis tests: fair/unfair cycles, yield counts."""

from repro.statespace.cycles import (
    build_state_graph,
    cycle_yield_count,
    enumerate_cycles,
    find_fair_cycles,
    has_fair_cycle,
    is_fair_cycle,
)
from repro.statespace.transition_system import figure3_system, pc_program


def two_thread_pingpong():
    """Both threads toggle the shared bit forever, yielding each time —
    every cycle through both threads is fair."""
    toggle = (lambda s: True, lambda s: 1 - s, 0, True)
    return pc_program("pingpong", 0, {"a": (toggle,), "b": (toggle,)})


class TestFigure3Cycles:
    def test_single_unfair_cycle(self):
        system = figure3_system()
        graph = build_state_graph(system)
        cycles = list(enumerate_cycles(graph))
        assert len(cycles) == 1
        (cycle,) = cycles
        # The cycle is u's spin loop; t is enabled throughout but never
        # scheduled: unfair.
        assert all(tid == "u" for _, tid in cycle)
        assert not is_fair_cycle(system, cycle)
        assert not has_fair_cycle(system)

    def test_cycle_yield_count(self):
        system = figure3_system()
        graph = build_state_graph(system)
        (cycle,) = list(enumerate_cycles(graph))
        # One of the two transitions (the yield() instruction) yields.
        assert cycle_yield_count(system, cycle) == 1


class TestFairCycles:
    def test_pingpong_has_fair_cycles(self):
        system = two_thread_pingpong()
        fair = find_fair_cycles(system)
        assert fair
        for cycle in fair:
            scheduled = {tid for _, tid in cycle}
            assert scheduled == {"a", "b"}

    def test_pingpong_also_has_unfair_cycles(self):
        system = two_thread_pingpong()
        graph = build_state_graph(system)
        unfair = [c for c in enumerate_cycles(graph)
                  if not is_fair_cycle(system, c)]
        # A single thread toggling alone starves the other: unfair.
        assert unfair

    def test_disabled_thread_does_not_make_cycle_unfair(self):
        # One runner loops; the other thread is never enabled: by the
        # paper's definition the cycle is fair.
        system = pc_program(
            "lonely", 0,
            {
                "runner": ((lambda s: True, lambda s: s, 0, True),),
                "sleeper": ((lambda s: False, lambda s: s, 1, False),),
            },
        )
        fair = find_fair_cycles(system)
        assert fair
        assert all(is_fair_cycle(system, c) for c in fair)


class TestGraph:
    def test_graph_counts(self):
        system = figure3_system()
        graph = build_state_graph(system)
        assert graph.state_count == 5
        # Initial state has both threads enabled.
        assert len(graph.successors(system.initial)) == 2

    def test_enumerate_limit(self):
        system = two_thread_pingpong()
        graph = build_state_graph(system)
        cycles = list(enumerate_cycles(graph, limit=2))
        assert len(cycles) <= 2
