"""Heap canonicalization tests."""

from repro.statespace.canonical import canonicalize, signature_hash


class TestAtoms:
    def test_atoms_pass_through(self):
        for value in (None, True, 0, 1.5, "s", b"b", frozenset({1})):
            assert canonicalize(value) == value


class TestContainers:
    def test_dict_insertion_order_irrelevant(self):
        first = {"a": 1, "b": 2}
        second = {"b": 2, "a": 1}
        assert canonicalize(first) == canonicalize(second)

    def test_set_order_irrelevant(self):
        assert canonicalize({3, 1, 2}) == canonicalize({2, 3, 1})

    def test_list_vs_tuple_distinguished(self):
        assert canonicalize([1, 2]) != canonicalize((1, 2))

    def test_nested_structures(self):
        value = {"k": [1, {2, 3}, {"inner": (4,)}]}
        assert canonicalize(value) == canonicalize(
            {"k": [1, {3, 2}, {"inner": (4,)}]}
        )

    def test_result_is_hashable(self):
        hash(canonicalize({"a": [1, {2}]}))
        assert isinstance(signature_hash([1, 2, {"x": 3}]), int)


class TestSharing:
    def test_shared_substructure_preserved(self):
        shared = [1, 2]
        aliased = [shared, shared]
        copied = [[1, 2], [1, 2]]
        # Aliasing is part of heap shape: distinct canonical forms.
        assert canonicalize(aliased) != canonicalize(copied)

    def test_cycles_handled(self):
        loop = []
        loop.append(loop)
        result = canonicalize(loop)
        assert ("@ref", 0) in result

    def test_isomorphic_cycles_equal(self):
        first = []
        first.append(first)
        second = []
        second.append(second)
        assert canonicalize(first) == canonicalize(second)


class TestObjects:
    def test_state_signature_method_used(self):
        class WithSig:
            def state_signature(self):
                return ("custom", 7)

        assert canonicalize(WithSig()) == ("WithSig", ("tuple", "custom", 7))

    def test_dict_objects_use_public_attrs(self):
        class Plain:
            def __init__(self):
                self.value = 3
                self._hidden = "no"

        result = canonicalize(Plain())
        assert ("value", 3) in result
        assert all("_hidden" not in str(part) for part in result)

    def test_identity_does_not_matter(self):
        class Plain:
            def __init__(self, v):
                self.v = v

        assert canonicalize(Plain(1)) == canonicalize(Plain(1))
        assert canonicalize(Plain(1)) != canonicalize(Plain(2))

    def test_slots_objects(self):
        class Slotted:
            __slots__ = ("x", "_y")

            def __init__(self):
                self.x = 1
                self._y = 2

        result = canonicalize(Slotted())
        assert result == ("Slotted", ("x", 1))
