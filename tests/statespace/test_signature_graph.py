"""Signature-graph extraction and static livelock analysis tests."""

from repro.statespace.signature_graph import (
    build_signature_graph,
    find_livelock_candidates,
)
from repro.workloads.dining import (
    dining_philosophers,
    dining_philosophers_livelock,
)
from repro.workloads.promise import promise_program
from repro.workloads.spinloop import spinloop


class TestGraphConstruction:
    def test_spinloop_graph(self):
        graph = build_signature_graph(spinloop(), depth_bound=100)
        assert graph.complete
        assert graph.initial is not None
        assert graph.state_count > 0
        assert graph.edges
        # Some state has the spinner's yielding transition annotated.
        assert any("u" in yielding for yielding in graph.yielding.values())

    def test_all_cycles_of_spinloop_are_unfair(self):
        graph = build_signature_graph(spinloop(), depth_bound=100)
        cycles = list(graph.cycles())
        assert cycles  # the spin loop is there
        assert all(not graph.is_fair_cycle(c) for c in cycles)

    def test_max_executions_marks_incomplete(self):
        graph = build_signature_graph(dining_philosophers(3),
                                      depth_bound=200, max_executions=3)
        assert not graph.complete


class TestLivelockCandidates:
    def test_fair_terminating_program_has_none(self):
        assert find_livelock_candidates(dining_philosophers(2),
                                        depth_bound=200) == []

    def test_figure1_cycle_found_statically(self):
        candidates = find_livelock_candidates(
            dining_philosophers_livelock(2), depth_bound=200,
        )
        assert candidates
        shortest = min(candidates, key=len)
        # The paper's livelock: both philosophers participate, six
        # transitions (Acquire, Acquire, TryAcquire, TryAcquire,
        # Release, Release).
        scheduled = [tid for _, tid in shortest]
        assert len(shortest) == 6
        assert set(scheduled) == {"Phil1", "Phil2"}

    def test_yield_counts_on_livelock_cycle(self):
        graph = build_signature_graph(dining_philosophers_livelock(2),
                                      depth_bound=200)
        fair = [c for c in graph.cycles() if graph.is_fair_cycle(c)]
        shortest = min(fair, key=len)
        # Each philosopher yields exactly once per lap (the failing
        # TryAcquire), so δ = 1 — within Theorem 6's guarantee.
        assert graph.cycle_yield_count(shortest) == 1

    def test_promise_stale_read_found_statically(self):
        candidates = find_livelock_candidates(
            promise_program(1, stale_read_bug=True), depth_bound=200,
        )
        assert candidates

    def test_static_and_dynamic_agree(self):
        """The checker diverges exactly on the programs whose signature
        graphs contain fair cycles."""
        from repro.checker import check

        for program_factory, has_livelock in [
            (lambda: dining_philosophers(2), False),
            (lambda: dining_philosophers_livelock(2), True),
        ]:
            static = bool(find_livelock_candidates(program_factory(),
                                                   depth_bound=200))
            dynamic = not check(program_factory(), depth_bound=300).ok
            assert static == dynamic == has_livelock
