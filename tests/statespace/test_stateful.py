"""Stateful ground-truth search tests."""

from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.runtime.api import pause
from repro.runtime.program import VMProgram
from repro.statespace.adapter import TransitionSystemProgram
from repro.statespace.stateful import (
    reachable_states,
    stateful_state_count,
)
from repro.statespace.transition_system import figure3_system
from repro.sync.atomics import SharedVar
from repro.workloads.dining import dining_philosophers


class TestReachableStates:
    def test_figure3(self):
        assert len(reachable_states(figure3_system())) == 5

    def test_max_states_cap(self):
        import pytest

        from repro.statespace.transition_system import pc_program

        # An infinite counter overflows any cap.
        system = pc_program(
            "infinite", 0,
            {"t": ((lambda s: True, lambda s: s + 1, 0, True),)},
        )
        with pytest.raises(RuntimeError):
            reachable_states(system, max_states=10)


class TestStatefulStateCount:
    def test_terminates_on_cyclic_program(self):
        """The dining retry loops put cycles in the state space; visited
        pruning must still terminate the replay search."""
        result = stateful_state_count(dining_philosophers(2),
                                      depth_bound=200)
        assert result.complete
        assert result.count == 20
        assert result.executions < 100

    def test_context_bound_reduces_or_keeps_states(self):
        total = stateful_state_count(dining_philosophers(3), depth_bound=200)
        cb1 = stateful_state_count(dining_philosophers(3),
                                   preemption_bound=1, depth_bound=200)
        assert cb1.count <= total.count
        assert total.complete and cb1.complete

    def test_agrees_with_graph_search_on_explicit_system(self):
        program = TransitionSystemProgram(figure3_system())
        result = stateful_state_count(program, depth_bound=100)
        assert result.states == reachable_states(figure3_system())

    def test_max_executions_marks_incomplete(self):
        result = stateful_state_count(dining_philosophers(3),
                                      depth_bound=200, max_executions=3)
        assert not result.complete

    def test_fair_search_covers_ground_truth_on_dining(self):
        """The headline coverage claim of Table 2, in miniature."""
        truth = stateful_state_count(dining_philosophers(2), depth_bound=200)
        coverage = CoverageTracker()
        explore_dfs(
            dining_philosophers(2), fair_policy(),
            ExecutorConfig(depth_bound=200),
            ExplorationLimits(stop_on_first_violation=False,
                              stop_on_first_divergence=False),
            coverage=coverage,
        )
        assert truth.states <= coverage.signatures()


class TestPruningRegression:
    def test_signature_aliased_starts_do_not_self_prune(self):
        """Regression: implicit start transitions leave the user-level
        signature unchanged; pruning must use the precise signature or the
        whole search collapses after one step."""

        def setup(env):
            x = SharedVar(0, name="x")

            def body():
                yield from pause()
                yield from x.set(1)

            env.spawn(body, name="a")
            env.spawn(body, name="b")
            env.set_state_fn(lambda: x.peek())

        program = VMProgram(setup, name="aliased")
        result = stateful_state_count(program, depth_bound=50)
        assert result.complete
        # Two user-visible states: x == 0 and x == 1.
        assert result.count == 2
        # But the search had to run through more than two executions.
        assert result.executions >= 2
