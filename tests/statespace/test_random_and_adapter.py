"""Random program generator + transition-system adapter tests."""

from repro.core.policies import NonfairPolicy, nonfair_policy
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.engine.results import Outcome
from repro.engine.strategies import explore_dfs
from repro.statespace.adapter import (
    TransitionSystemInstance,
    TransitionSystemProgram,
)
from repro.statespace.random_programs import (
    random_good_samaritan_system,
    random_system,
)
from repro.statespace.stateful import reachable_states
from repro.statespace.transition_system import figure3_system


class TestRandomPrograms:
    def test_same_seed_same_system(self):
        a = random_system(7)
        b = random_system(7)
        assert reachable_states(a) == reachable_states(b)

    def test_different_seeds_usually_differ(self):
        spaces = {frozenset(reachable_states(random_system(seed)))
                  for seed in range(12)}
        assert len(spaces) > 3

    def test_requested_thread_count(self):
        system = random_system(3, n_threads=4)
        assert len(system.thread_ids()) == 4

    def test_gs_systems_yield_on_every_backward_jump(self):
        """Structural GS: non-yielding instructions move strictly
        forward, so every control-flow cycle yields."""
        for seed in range(30):
            system = random_good_samaritan_system(seed, n_threads=2,
                                                  n_pcs=3, domain=3)
            for tid in system.thread_ids():
                # Walk each thread alone from every reachable shared
                # value; count non-yield steps between yields.
                for shared in range(3):
                    state = (shared, tuple(
                        0 for _ in system.thread_ids()))
                    steps_without_yield = 0
                    for _ in range(50):
                        if tid not in system.enabled_threads(state):
                            break
                        if system.is_yielding(state, tid):
                            steps_without_yield = 0
                        else:
                            steps_without_yield += 1
                        assert steps_without_yield <= 3, (
                            f"{system.name}/{tid} ran {steps_without_yield}"
                            f" non-yield steps — a yield-free loop"
                        )
                        state = system.next_state(state, tid)


class TestAdapter:
    def test_instance_tracks_state_value(self):
        instance = TransitionSystemInstance(figure3_system())
        assert instance.state == figure3_system().initial
        assert instance.state_signature() == instance.state
        info = instance.step("t")
        assert info.tid == "t"
        assert instance.state != figure3_system().initial

    def test_step_info_fields(self):
        instance = TransitionSystemInstance(figure3_system())
        # From (a,c), stepping u keeps both threads enabled.
        info = instance.step("u")
        assert info.enabled_before == frozenset({"t", "u"})
        assert info.enabled_after == frozenset({"t", "u"})
        assert not info.yielded
        # Now u is at the yield instruction.
        assert instance.is_yielding("u")

    def test_program_instances_independent(self):
        program = TransitionSystemProgram(figure3_system())
        first = program.instantiate()
        second = program.instantiate()
        first.step("t")
        assert second.state == figure3_system().initial

    def test_runs_under_the_engine(self):
        program = TransitionSystemProgram(figure3_system())
        record = run_execution(
            program, NonfairPolicy(), GuidedChooser([0] * 10),
            ExecutorConfig(depth_bound=50, on_depth_exceeded="prune"),
        )
        assert record.outcome in (Outcome.TERMINATED, Outcome.DEPTH_PRUNED)

    def test_exhaustive_unfair_dfs_needs_bound(self):
        program = TransitionSystemProgram(figure3_system())
        result = explore_dfs(
            program, nonfair_policy(),
            ExecutorConfig(depth_bound=20, on_depth_exceeded="prune"),
        )
        assert result.nonterminating_executions > 0
