"""Transition system and pc_program tests, including Figure 3."""

import pytest

from repro.statespace.transition_system import (
    ThreadSpec,
    TransitionSystem,
    figure3_system,
    pc_program,
)


class TestTransitionSystem:
    def make_counter(self):
        # One thread incrementing a counter to 3.
        spec = ThreadSpec(
            enabled=lambda s: s < 3,
            step=lambda s: s + 1,
        )
        return TransitionSystem("counter", 0, {"inc": spec})

    def test_enabled_and_step(self):
        system = self.make_counter()
        assert system.enabled_threads(0) == frozenset({"inc"})
        assert system.next_state(0, "inc") == 1
        assert system.enabled_threads(3) == frozenset()

    def test_step_disabled_rejected(self):
        system = self.make_counter()
        with pytest.raises(ValueError):
            system.next_state(3, "inc")

    def test_default_yield_false(self):
        system = self.make_counter()
        assert not system.is_yielding(0, "inc")

    def test_empty_threads_rejected(self):
        with pytest.raises(ValueError):
            TransitionSystem("empty", 0, {})


class TestPcProgram:
    def test_straight_line(self):
        system = pc_program(
            "inc2", 0,
            {"t": (
                (lambda s: True, lambda s: s + 1, 1, False),
                (lambda s: True, lambda s: s + 1, 2, False),
            )},
        )
        state = system.initial
        assert state == (0, (0,))
        state = system.next_state(state, "t")
        assert state == (1, (1,))
        state = system.next_state(state, "t")
        assert state == (2, (2,))
        assert system.enabled_threads(state) == frozenset()

    def test_guard_disables(self):
        system = pc_program(
            "guarded", 0,
            {"t": ((lambda s: s == 1, lambda s: s, 1, False),)},
        )
        assert system.enabled_threads(system.initial) == frozenset()

    def test_branching_next_pc(self):
        system = pc_program(
            "branch", 1,
            {"t": (
                (lambda s: True, lambda s: s,
                 lambda s: 1 if s == 0 else 2, False),
                (lambda s: True, lambda s: s, 0, True),
            )},
        )
        # shared = 1: pc 0 jumps straight to 2 (terminated).
        state = system.next_state(system.initial, "t")
        assert state == (1, (2,))
        assert system.enabled_threads(state) == frozenset()

    def test_yield_flag(self):
        system = pc_program(
            "yielding", 0,
            {"t": ((lambda s: True, lambda s: s, 1, True),)},
        )
        assert system.is_yielding(system.initial, "t")


class TestFigure3:
    def test_state_space_matches_paper(self):
        """The diagram of Figure 3: five states (a,c) (a,d) (b,c) (b,d)
        (b,e), a cycle between (a,c) and (a,d)."""
        from repro.statespace.stateful import reachable_states

        system = figure3_system()
        states = reachable_states(system)
        assert len(states) == 5

    def test_only_u_transition_from_ad_is_yield(self):
        system = figure3_system()
        # State (a,d): t at pc 0, u at pc 1 (the yield instruction).
        state_ad = (0, (0, 1))
        assert system.is_yielding(state_ad, "u")
        assert not system.is_yielding(state_ad, "t")
        # State (a,c): u's read is not a yield.
        assert not system.is_yielding(system.initial, "u")

    def test_t_terminates_after_store(self):
        system = figure3_system()
        state = system.next_state(system.initial, "t")
        assert "t" not in system.enabled_threads(state)

    def test_u_exits_once_x_set(self):
        system = figure3_system()
        state = system.next_state(system.initial, "t")  # x := 1
        state = system.next_state(state, "u")  # while: sees 1, exits
        assert system.enabled_threads(state) == frozenset()
