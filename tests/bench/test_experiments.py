"""Tests for the experiment harness itself."""

from repro.bench.experiments import (
    BugSearchResult,
    CoverageCell,
    count_nonterminating_executions,
    find_bug,
    measure_coverage,
    program_characteristics,
)
from repro.bench.tables import format_series, format_table
from repro.workloads.dining import (
    dining_philosophers,
    dining_philosophers_livelock,
)
from repro.workloads.wsq import work_stealing_queue

import repro.workloads.dining as dining_module


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_format_series(self):
        text = format_series("s", [(1, 2), (10, 20)])
        assert "s" in text and "20" in text


class TestFig2Harness:
    def test_counts_grow_with_bound(self):
        small, _, _ = count_nonterminating_executions(
            lambda: dining_philosophers_livelock(2), 8, max_seconds=10,
        )
        large, _, _ = count_nonterminating_executions(
            lambda: dining_philosophers_livelock(2), 12, max_seconds=10,
        )
        assert 0 < small < large


class TestCoverageHarness:
    def test_fair_cell_full_coverage_on_dining2(self):
        cell = measure_coverage(
            lambda: dining_philosophers(2), "cb=1", fair=True,
            divergence_bound=300, max_seconds=10,
        )
        assert isinstance(cell, CoverageCell)
        assert cell.full_coverage
        assert not cell.timed_out
        assert cell.label == str(cell.states)

    def test_unfair_cell_uses_depth_bound(self):
        cell = measure_coverage(
            lambda: dining_philosophers(2), "cb=1", fair=False,
            depth_bound=15, divergence_bound=300, max_seconds=10,
        )
        assert cell.depth_bound == 15
        assert cell.states > 0

    def test_timed_out_cell_marked(self):
        cell = measure_coverage(
            lambda: dining_philosophers(3), "dfs", fair=True,
            divergence_bound=300, max_seconds=0.05, total_states=97,
        )
        assert cell.timed_out
        assert cell.label.endswith("*")

    def test_unknown_strategy_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            measure_coverage(lambda: dining_philosophers(2), "bogus",
                             fair=True)


class TestBugHarness:
    def test_fair_finds_seeded_bug(self):
        result = find_bug(
            lambda: work_stealing_queue(items=1, stealers=1, bug=2),
            fair=True, preemption_bound=2, max_seconds=20,
        )
        assert isinstance(result, BugSearchResult)
        assert result.found
        assert result.executions_label != "-"

    def test_unfound_bug_labels(self):
        result = find_bug(
            lambda: work_stealing_queue(items=1, stealers=1),  # no bug
            fair=True, preemption_bound=0, max_seconds=5,
        )
        assert not result.found
        assert result.executions_label == "-"
        assert result.seconds_label.startswith(">")


class TestCharacteristics:
    def test_dining_row(self):
        name, loc, threads, sync_ops = program_characteristics(
            dining_philosophers(3), dining_module,
        )
        assert name == "dining(3)"
        assert loc > 30
        assert threads == 3
        assert sync_ops > 5
