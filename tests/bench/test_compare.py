"""Benchmark regression comparison: rules, exit codes, CLI wiring."""

import copy
import json

import pytest

from repro.cli import main
from repro.obs.profile import compare_bench, load_bench


def hotpath_doc():
    return {
        "bench": "hotpath_replay",
        "scale": "smoke",
        "cpu_count": 4,
        "host": "ci-runner",
        "entries": [{
            "program": "bounded-buffer(items=2, consumers=2)",
            "strategy": "dfs",
            "depth_bound": 200,
            "preemption_bound": 2,
            "snapshot_interval": 4,
            "runs": [
                {"snapshot_cache": False, "seconds": 0.5, "ok": True,
                 "executions": 250, "transitions": 4000,
                 "replayed_steps": 3000, "restored_steps": 0,
                 "snapshot_hits": 0, "snapshot_misses": 0},
                {"snapshot_cache": True, "seconds": 0.4, "ok": True,
                 "executions": 250, "transitions": 4000,
                 "replayed_steps": 400, "restored_steps": 2500,
                 "snapshot_hits": 60, "snapshot_misses": 2},
            ],
            "replayed_reduction": 7.5,
            "cache_speedup": 1.25,
        }],
    }


class TestCompareRules:
    def test_identical_documents_pass(self):
        comparison = compare_bench(hotpath_doc(), hotpath_doc())
        assert comparison.ok
        assert comparison.exit_code == 0
        assert not comparison.regressions

    def test_injected_20_percent_regression_fails(self):
        current = hotpath_doc()
        run = current["entries"][0]["runs"][0]
        run["seconds"] = round(run["seconds"] * 1.25, 3)  # > 20% slower
        comparison = compare_bench(hotpath_doc(), current)
        assert comparison.exit_code == 1
        assert any(v.metric == "seconds" for v in comparison.regressions)

    def test_slowdown_within_tolerance_passes(self):
        current = hotpath_doc()
        run = current["entries"][0]["runs"][0]
        run["seconds"] = round(run["seconds"] * 1.15, 3)
        assert compare_bench(hotpath_doc(), current).ok

    def test_improvement_is_reported_not_gated(self):
        current = hotpath_doc()
        current["entries"][0]["runs"][0]["seconds"] = 0.3
        comparison = compare_bench(hotpath_doc(), current)
        assert comparison.ok
        assert comparison.improvements

    def test_replayed_steps_are_informational(self):
        # The step counter is gated through the replayed_reduction
        # ratio, not raw counts — a blowup shows up there instead.
        current = hotpath_doc()
        current["entries"][0]["runs"][1]["replayed_steps"] = 3000
        comparison = compare_bench(hotpath_doc(), current)
        assert comparison.ok
        assert any(v.metric == "replayed_steps" and v.status == "info"
                   for v in comparison.values)

    def test_reduction_collapse_fails(self):
        current = hotpath_doc()
        current["entries"][0]["replayed_reduction"] = 1.1
        assert compare_bench(hotpath_doc(), current).exit_code == 1

    def test_cache_speedup_collapse_fails(self):
        # The wall-clock gate: the off/on ratio dropping past tolerance
        # means the cache stopped winning in seconds.
        current = hotpath_doc()
        current["entries"][0]["cache_speedup"] = 0.9
        comparison = compare_bench(hotpath_doc(), current)
        assert comparison.exit_code == 1
        assert any(v.metric == "cache_speedup"
                   for v in comparison.regressions)

    def test_determinism_contract_is_exact(self):
        # One execution of drift is a regression, no tolerance applies.
        current = hotpath_doc()
        current["entries"][0]["runs"][0]["executions"] = 251
        comparison = compare_bench(hotpath_doc(), current)
        assert any(v.metric == "executions"
                   for v in comparison.regressions)

    def test_sub_noise_floor_seconds_never_gate(self):
        baseline, current = hotpath_doc(), hotpath_doc()
        baseline["entries"][0]["runs"][0]["seconds"] = 0.004
        current["entries"][0]["runs"][0]["seconds"] = 0.012  # 3x but tiny
        assert compare_bench(baseline, current).ok

    def test_provenance_drift_warns_without_failing(self):
        current = hotpath_doc()
        current["host"] = "laptop"
        current["cpu_count"] = 1
        comparison = compare_bench(hotpath_doc(), current)
        assert comparison.ok
        drifts = [v for v in comparison.values if v.status == "drift"]
        assert {v.metric for v in drifts} == {"host", "cpu_count"}

    def test_missing_entry_warns(self):
        current = hotpath_doc()
        current["entries"] = []
        comparison = compare_bench(hotpath_doc(), current)
        assert comparison.ok
        assert any("missing" in w for w in comparison.warnings)

    def test_snapshot_cost_columns_are_informational(self):
        baseline, current = hotpath_doc(), hotpath_doc()
        for doc, value in ((baseline, 0.01), (current, 0.09)):
            doc["entries"][0]["runs"][1]["capture_seconds"] = value
        comparison = compare_bench(baseline, current)
        assert comparison.ok
        assert any(v.metric == "capture_seconds" and v.status == "info"
                   for v in comparison.values)

    def test_summary_mentions_the_verdict(self):
        text = compare_bench(hotpath_doc(), hotpath_doc()).summary()
        assert "result: OK" in text


class TestLoadAndCli:
    def write(self, tmp_path, name, document):
        path = tmp_path / name
        path.write_text(json.dumps(document))
        return str(path)

    def test_load_bench_rejects_non_bench_json(self, tmp_path):
        path = self.write(tmp_path, "x.json", {"not": "a bench"})
        with pytest.raises(ValueError, match="entries"):
            load_bench(path)

    def test_cli_exit_zero_on_identical(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", hotpath_doc())
        code = main(["bench", "compare", base, base])
        assert code == 0
        assert "result: OK" in capsys.readouterr().out

    def test_cli_exit_nonzero_on_regression(self, tmp_path, capsys):
        base = self.write(tmp_path, "base.json", hotpath_doc())
        current_doc = copy.deepcopy(hotpath_doc())
        current_doc["entries"][0]["runs"][0]["seconds"] = 0.7
        current = self.write(tmp_path, "current.json", current_doc)
        code = main(["bench", "compare", base, current])
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_cli_tolerance_flag(self, tmp_path):
        base = self.write(tmp_path, "base.json", hotpath_doc())
        current_doc = copy.deepcopy(hotpath_doc())
        current_doc["entries"][0]["runs"][0]["seconds"] = 0.7  # +40%
        current = self.write(tmp_path, "current.json", current_doc)
        assert main(["bench", "compare", base, current,
                     "--tolerance", "0.5"]) == 0

    def test_cli_missing_file_is_a_clean_error(self, tmp_path):
        base = self.write(tmp_path, "base.json", hotpath_doc())
        with pytest.raises(SystemExit, match="cannot load"):
            main(["bench", "compare", base, str(tmp_path / "nope.json")])

    def test_committed_baselines_load(self):
        # The repo-root BENCH files must stay valid compare inputs.
        import pathlib

        root = pathlib.Path(__file__).resolve().parent.parent.parent
        for name in ("BENCH_hotpath.json", "BENCH_parallel.json"):
            document = load_bench(str(root / name))
            comparison = compare_bench(document, document)
            assert comparison.exit_code == 0
