"""Replay and coverage-tracker tests."""

from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.replay import replay_schedule
from repro.engine.results import Outcome
from repro.engine.strategies import explore_dfs
from repro.runtime.api import check, pause
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar


def racy_program():
    def setup(env):
        x = SharedVar(0, name="x")

        def writer():
            yield from x.set(1)
            yield from x.set(2)

        def reader():
            value = yield from x.get()
            check(value != 1, "saw intermediate")

        env.spawn(writer, name="w")
        env.spawn(reader, name="r")

    return VMProgram(setup, name="racy")


class TestReplay:
    def test_replays_violation_exactly(self):
        program = racy_program()
        result = explore_dfs(program, nonfair_policy())
        found = result.violations[0]
        replayed = replay_schedule(program, found.decisions, nonfair_policy())
        assert replayed.outcome is Outcome.VIOLATION
        assert str(replayed.violation) == str(found.violation)
        assert replayed.schedule == found.schedule

    def test_replays_from_plain_indices(self):
        program = racy_program()
        result = explore_dfs(program, nonfair_policy())
        found = result.violations[0]
        replayed = replay_schedule(program, found.schedule, nonfair_policy())
        assert replayed.outcome is Outcome.VIOLATION

    def test_full_trace_recorded(self):
        program = racy_program()
        result = explore_dfs(program, nonfair_policy())
        found = result.violations[0]
        replayed = replay_schedule(program, found.decisions, nonfair_policy())
        assert len(replayed.trace) == replayed.steps


class TestCoverageTracker:
    def test_records_new_states(self):
        tracker = CoverageTracker()
        assert tracker.record("a")
        assert not tracker.record("a")
        assert tracker.record("b")
        assert tracker.count == 2
        assert tracker.seen("a")
        assert not tracker.seen("c")

    def test_none_signature_ignored(self):
        tracker = CoverageTracker()
        assert not tracker.record(None)
        assert tracker.count == 0

    def test_history_checkpoints(self):
        tracker = CoverageTracker()
        tracker.record("a")
        tracker.end_execution()
        tracker.record("b")
        tracker.record("c")
        tracker.end_execution()
        assert tracker.history == [(1, 1), (2, 3)]

    def test_missing_from(self):
        ours = CoverageTracker()
        reference = CoverageTracker()
        for sig in ("a", "b"):
            reference.record(sig)
        ours.record("a")
        assert ours.missing_from(reference) == frozenset({"b"})
