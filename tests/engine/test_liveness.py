"""Temporal liveness monitor tests (the Section 6 extension)."""

from repro.checker import Checker
from repro.engine.liveness import EventuallyMonitor, ResponseMonitor
from repro.engine.results import DivergenceKind
from repro.runtime.api import yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar


class TestResponseMonitorUnit:
    def test_no_violation_when_responses_follow(self):
        state = {"trigger": False, "response": False}
        monitor = ResponseMonitor(lambda: state["trigger"],
                                  lambda: state["response"],
                                  min_occurrences=4)
        for _ in range(20):
            state["trigger"], state["response"] = True, False
            monitor.observe()
            state["trigger"], state["response"] = False, True
            monitor.observe()
        assert monitor.verdict() is None

    def test_violation_when_trigger_unanswered(self):
        state = {"on": True}
        monitor = ResponseMonitor(lambda: state["on"], lambda: False,
                                  min_occurrences=4)
        for _ in range(10):
            monitor.observe()
        verdict = monitor.verdict()
        assert verdict is not None and "violated" in verdict

    def test_window_resets_pending_on_response(self):
        events = [True] * 3 + [False]  # 3 triggers then a response
        monitor = ResponseMonitor(lambda: True, lambda: False,
                                  min_occurrences=4)
        # Manually drive the deque: 3 unanswered triggers < threshold.
        for _ in range(3):
            monitor.observe()
        assert monitor.verdict() is None


class TestEventuallyMonitorUnit:
    def test_satisfied_once_goal_holds(self):
        flag = {"v": False}
        monitor = EventuallyMonitor(lambda: flag["v"], name="goal")
        monitor.observe()
        assert monitor.verdict() is not None
        flag["v"] = True
        monitor.observe()
        assert monitor.verdict() is None
        flag["v"] = False  # goal may stop holding; still satisfied
        monitor.observe()
        assert monitor.verdict() is None


class TestEndToEnd:
    def make_stuck_boot(self):
        """A program that diverges before ever reaching its goal state."""

        def setup(env):
            booted = SharedVar(False, name="booted")

            def spinner():
                # Waits for a boot that never happens (yielding politely).
                while not (yield from booted.get()):
                    yield from yield_now()

            env.spawn(spinner, name="spinner")
            env.add_temporal_monitor(EventuallyMonitor(
                goal=lambda: bool(booted.peek()), name="boots",
            ))

        return VMProgram(setup, name="stuck-boot")

    def test_temporal_violation_reported_at_divergence(self):
        result = Checker(self.make_stuck_boot(), depth_bound=60).run()
        assert not result.ok
        divergent = result.divergence
        assert divergent is not None
        assert divergent.divergence.kind is DivergenceKind.TEMPORAL
        assert "boots" in divergent.divergence.detail
