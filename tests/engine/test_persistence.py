"""Repro-file (schedule persistence) tests."""

import json

import pytest

from repro.core.policies import nonfair_policy
from repro.engine.executor import ExecutorConfig
from repro.engine.persistence import (
    load_and_replay,
    load_schedule,
    save_schedule,
    schedule_to_dict,
)
from repro.engine.results import Outcome
from repro.engine.strategies import explore_dfs
from repro.runtime.api import check
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar


def racy_program():
    def setup(env):
        x = SharedVar(0, name="x")

        def writer():
            yield from x.set(1)
            yield from x.set(2)

        def reader():
            value = yield from x.get()
            check(value != 1, "saw intermediate")

        env.spawn(writer, name="w")
        env.spawn(reader, name="r")

    return VMProgram(setup, name="racy")


@pytest.fixture
def found(tmp_path):
    program = racy_program()
    result = explore_dfs(program, nonfair_policy(), ExecutorConfig())
    assert result.found_violation
    return program, result.violations[0], tmp_path


class TestRoundTrip:
    def test_save_load_replay(self, found):
        program, record, tmp_path = found
        path = save_schedule(tmp_path / "bug.json", program, record,
                             policy_name="nonfair",
                             config=ExecutorConfig())
        replayed = load_and_replay(path, racy_program(), nonfair_policy())
        assert replayed.outcome is Outcome.VIOLATION
        assert "saw intermediate" in str(replayed.violation)

    def test_payload_contents(self, found):
        program, record, _ = found
        payload = schedule_to_dict(program, record, policy_name="nonfair")
        assert payload["program"] == "racy"
        assert payload["outcome"] == "violation"
        assert payload["schedule"] == record.schedule
        assert "saw intermediate" in payload["violation"]
        json.dumps(payload)  # must be serializable

    def test_config_restored_from_file(self, found):
        program, record, tmp_path = found
        path = save_schedule(
            tmp_path / "bug.json", program, record,
            config=ExecutorConfig(depth_bound=77, preemption_bound=3),
        )
        payload = load_schedule(path)
        assert payload["config"]["depth_bound"] == 77
        assert payload["config"]["preemption_bound"] == 3
        # load_and_replay with config=None uses the stored one.
        replayed = load_and_replay(path, racy_program(), nonfair_policy())
        assert replayed.outcome is Outcome.VIOLATION


class TestValidation:
    def test_wrong_program_rejected(self, found):
        program, record, tmp_path = found
        path = save_schedule(tmp_path / "bug.json", program, record)
        other = VMProgram(lambda env: None, name="other")
        with pytest.raises(ValueError):
            load_and_replay(path, other, nonfair_policy())

    def test_bad_format_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 99, "schedule": []}))
        with pytest.raises(ValueError):
            load_schedule(path)

    def test_missing_schedule_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format": 1}))
        with pytest.raises(ValueError):
            load_schedule(path)


class TestAtomicity:
    """A repro file is written atomically; a torn file loads loudly."""

    def test_save_leaves_no_tmp_file(self, found):
        program, record, tmp_path = found
        save_schedule(tmp_path / "bug.json", program, record)
        save_schedule(tmp_path / "bug.json", program, record)  # overwrite
        assert [p.name for p in tmp_path.iterdir()] == ["bug.json"]

    def test_truncated_file_raises_clear_value_error(self, found):
        program, record, tmp_path = found
        path = save_schedule(tmp_path / "bug.json", program, record)
        text = path.read_text()
        path.write_text(text[: len(text) // 2])  # simulate a torn write
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_schedule(path)

    def test_non_object_payload_raises_clear_value_error(self, tmp_path):
        path = tmp_path / "bug.json"
        path.write_text("[]")
        with pytest.raises(ValueError, match="truncated or corrupt"):
            load_schedule(path)
