"""Sleep-set partial-order reduction tests."""

from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.results import Outcome
from repro.engine.strategies import (
    ExplorationLimits,
    explore_dfs,
    explore_dfs_sleepsets,
)
from repro.runtime.api import check
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.mutex import Mutex
from repro.workloads.dining import dining_philosophers

LIMITS = ExplorationLimits(stop_on_first_violation=False,
                           stop_on_first_divergence=False)


def independent_program(n=2):
    """n threads each taking and releasing a *private* lock: every
    interleaving is equivalent."""

    def setup(env):
        locks = [Mutex(name=f"m{i}") for i in range(n)]

        def worker(m):
            yield from m.acquire()
            yield from m.release()

        for i in range(n):
            env.spawn(worker, locks[i], name=f"w{i}")
        env.set_state_fn(lambda: tuple(m.owner_name() for m in locks))

    return VMProgram(setup, name=f"independent({n})")


def racy_program():
    def setup(env):
        x = SharedVar(0, name="x")

        def writer():
            yield from x.set(1)
            yield from x.set(2)

        def reader():
            value = yield from x.get()
            check(value != 1, "saw intermediate")

        env.spawn(writer, name="w")
        env.spawn(reader, name="r")

    return VMProgram(setup, name="racy")


class TestReduction:
    def test_independent_threads_reduced(self):
        full = explore_dfs(independent_program(), nonfair_policy(),
                           ExecutorConfig(), LIMITS)
        por = explore_dfs_sleepsets(independent_program(),
                                    nonfair_policy(), limits=LIMITS)
        full_terminal = full.outcomes[Outcome.TERMINATED]
        por_terminal = por.outcomes[Outcome.TERMINATED]
        assert por_terminal < full_terminal
        assert por.complete

    def test_reduction_grows_with_independence(self):
        por2 = explore_dfs_sleepsets(independent_program(2),
                                     nonfair_policy(), limits=LIMITS)
        por3 = explore_dfs_sleepsets(independent_program(3),
                                     nonfair_policy(), limits=LIMITS)
        full3 = explore_dfs(independent_program(3), nonfair_policy(),
                            ExecutorConfig(), LIMITS)
        saved3 = (full3.outcomes[Outcome.TERMINATED]
                  - por3.outcomes[Outcome.TERMINATED])
        assert saved3 > 0


class TestSoundness:
    def test_violations_preserved(self):
        por = explore_dfs_sleepsets(racy_program(), nonfair_policy())
        assert por.found_violation

    def test_state_coverage_preserved_on_dining(self):
        full_cov = CoverageTracker()
        por_cov = CoverageTracker()
        explore_dfs(dining_philosophers(2), fair_policy(),
                    ExecutorConfig(depth_bound=300), LIMITS,
                    coverage=full_cov)
        explore_dfs_sleepsets(dining_philosophers(2), fair_policy(),
                              depth_bound=300, limits=LIMITS,
                              coverage=por_cov)
        assert full_cov.signatures() == por_cov.signatures()

    def test_deadlocks_preserved(self):
        def setup(env):
            a, b = Mutex(name="a"), Mutex(name="b")

            def left():
                yield from a.acquire()
                yield from b.acquire()
                yield from b.release()
                yield from a.release()

            def right():
                yield from b.acquire()
                yield from a.acquire()
                yield from a.release()
                yield from b.release()

            env.spawn(left, name="L")
            env.spawn(right, name="R")

        program = VMProgram(setup, name="deadlocky")
        por = explore_dfs_sleepsets(program, nonfair_policy(),
                                    limits=ExplorationLimits())
        assert por.found_violation or por.outcomes[Outcome.DEADLOCK] > 0


class TestIndependenceRelation:
    def test_resources_of_primitive_ops(self):
        from repro.sync.mutex import MutexAcquireOp

        lock = Mutex()
        other = Mutex()
        op1 = MutexAcquireOp(lock, None)
        op2 = MutexAcquireOp(other, None)
        op3 = MutexAcquireOp(lock, None)
        assert op1.resources() != op2.resources()
        assert op1.resources() == op3.resources()

    def test_local_ops_have_empty_resources(self):
        from repro.runtime.ops import ChooseOp, PauseOp, YieldOp

        assert YieldOp().resources() == ()
        assert PauseOp().resources() == ()
        assert ChooseOp(2).resources() == ()

    def test_unknown_ops_conservative(self):
        from repro.runtime.ops import CreateThreadOp, StartOp

        assert StartOp().resources() is None
        assert CreateThreadOp(lambda: None, ()).resources() is None
