"""Result types: traces, summaries, schedules."""

from collections import Counter

from repro.engine.results import (
    Decision,
    DivergenceKind,
    DivergenceReport,
    ExecutionResult,
    ExplorationResult,
    Outcome,
    TraceStep,
    format_trace,
)


def step(name, op, yielded=False):
    return TraceStep(tid=0, thread_name=name, operation=op,
                     yielded=yielded, enabled_before=frozenset({0}))


class TestFormatTrace:
    def test_numbering_and_yield_marker(self):
        text = format_trace([step("a", "acquire(m)"),
                             step("b", "yield", yielded=True)])
        lines = text.splitlines()
        assert lines[0].startswith("   0. a: acquire(m)")
        assert "[yield]" in lines[1]

    def test_limit_elides_prefix(self):
        trace = [step("a", f"op{i}") for i in range(10)]
        text = format_trace(trace, limit=3)
        assert "7 earlier steps elided" in text
        assert "op9" in text
        assert "op0" not in text

    def test_no_elision_when_short(self):
        text = format_trace([step("a", "op")], limit=10)
        assert "elided" not in text


class TestExecutionResult:
    def test_schedule_extracts_indices(self):
        record = ExecutionResult(
            outcome=Outcome.TERMINATED,
            decisions=[Decision("thread", 1, 2, "t"),
                       Decision("data", 0, 3, 0)],
            steps=2,
        )
        assert record.schedule == [1, 0]


class TestExplorationResult:
    def make(self, **kwargs):
        result = ExplorationResult(program_name="p", policy_name="fair",
                                   strategy_name="dfs", **kwargs)
        return result

    def test_counters_initialized(self):
        result = self.make()
        assert isinstance(result.outcomes, Counter)
        assert not result.found_violation
        assert not result.found_divergence

    def test_livelock_and_gs_filters(self):
        def divergent(kind):
            return ExecutionResult(
                outcome=Outcome.DIVERGENCE, decisions=[], steps=1,
                divergence=DivergenceReport(kind=kind, culprits=("x",),
                                            window=10, detail="d"),
            )

        result = self.make()
        result.divergences = [
            divergent(DivergenceKind.LIVELOCK),
            divergent(DivergenceKind.GOOD_SAMARITAN_VIOLATION),
            divergent(DivergenceKind.UNFAIR),
        ]
        assert len(result.livelocks()) == 1
        assert len(result.gs_violations()) == 1

    def test_summary_mentions_key_facts(self):
        result = self.make()
        result.executions = 5
        result.outcomes[Outcome.TERMINATED] = 5
        result.states_covered = 12
        text = result.summary()
        assert "executions=5" in text
        assert "states covered=12" in text
        assert "fair" in text


class TestDivergenceReport:
    def test_str(self):
        report = DivergenceReport(kind=DivergenceKind.LIVELOCK,
                                  culprits=("a",), window=5, detail="spin")
        assert "livelock" in str(report)
        assert "spin" in str(report)
