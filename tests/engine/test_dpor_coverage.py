"""Coverage-oracle validation of source-DPOR (ROADMAP item 4).

Every test here compares the stateless DPOR search against the stateful
ground truth (:func:`repro.statespace.stateful.stateful_search`): the
reduction may skip executions, but it must not skip verdicts — every
reachable terminal state, every deadlock state and every violation
message the unreduced state-space walk finds must also be found by DPOR.
The harness lives in ``tests/helpers``
(:func:`~tests.helpers.assert_dpor_matches_ground_truth`).
"""

from repro.runtime.api import check
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.mutex import Mutex
from repro.workloads.dining import dining_philosophers

from tests.helpers import (
    assert_dpor_matches_ground_truth,
    dfs_coverage,
    ground_truth,
    sleepset_coverage,
)


def independent_program(n=2):
    """n threads on n private locks: one terminal state, n! interleavings."""

    def setup(env):
        locks = [Mutex(name=f"m{i}") for i in range(n)]

        def worker(m):
            yield from m.acquire()
            yield from m.release()

        for i in range(n):
            env.spawn(worker, locks[i], name=f"w{i}")
        env.set_state_fn(lambda: tuple(m.owner_name() for m in locks))

    return VMProgram(setup, name=f"independent({n})")


def abba_program():
    """The classic ABBA deadlock: lock order a,b vs b,a."""

    def setup(env):
        a, b = Mutex(name="a"), Mutex(name="b")

        def left():
            yield from a.acquire()
            yield from b.acquire()
            yield from b.release()
            yield from a.release()

        def right():
            yield from b.acquire()
            yield from a.acquire()
            yield from a.release()
            yield from b.release()

        env.spawn(left, name="L")
        env.spawn(right, name="R")
        env.set_state_fn(lambda: (a.owner_name(), b.owner_name()))

    return VMProgram(setup, name="abba")


def racy_program():
    """A reader that objects to one specific write interleaving."""

    def setup(env):
        x = SharedVar(0, name="x")

        def writer():
            yield from x.set(1)
            yield from x.set(2)

        def reader():
            value = yield from x.get()
            check(value != 1, "saw intermediate")

        env.spawn(writer, name="w")
        env.spawn(reader, name="r")
        env.set_state_fn(lambda: x.peek())

    return VMProgram(setup, name="racy")


class TestOracleCalibration:
    """The oracle itself must agree with plain DFS before it is allowed
    to judge the reduced strategies."""

    def test_dfs_terminal_sets_match_ground_truth(self):
        for program_factory in (independent_program, abba_program,
                                racy_program):
            truth = ground_truth(program_factory())
            dfs = dfs_coverage(program_factory())
            assert dfs.complete and truth.complete
            assert dfs.terminal_states == truth.terminal_states
            assert dfs.deadlock_states == truth.deadlock_states
            assert dfs.violation_messages == truth.violation_messages


class TestDporCoverage:
    def test_independent_threads(self):
        truth, dpor, por = assert_dpor_matches_ground_truth(
            independent_program(3))
        assert len(truth.terminal_states) == 1
        # Three fully independent threads: DPOR collapses the 3! orders.
        assert dpor.executions < por.executions

    def test_abba_deadlocks(self):
        truth, dpor, por = assert_dpor_matches_ground_truth(abba_program())
        assert truth.deadlock_states, "abba must deadlock"
        assert dpor.deadlock_states == truth.deadlock_states
        assert dpor.executions < por.executions

    def test_racy_violation(self):
        truth, dpor, _ = assert_dpor_matches_ground_truth(racy_program())
        assert truth.violation_messages == frozenset(
            {"saw intermediate"})
        assert dpor.violation_messages == truth.violation_messages

    def test_dining_philosophers(self):
        truth, dpor, por = assert_dpor_matches_ground_truth(
            dining_philosophers(2), depth_bound=300)
        # The paper-scale reduction: an order of magnitude fewer
        # executions than sleep sets on the same workload.
        assert dpor.executions * 10 <= por.executions


class TestPorAudit:
    """Sleep sets prune redundant transitions, never states: its state
    coverage must equal the ground truth's exactly (regression guard for
    the sleep-set filter in por.py)."""

    def test_sleepset_state_coverage_is_exhaustive(self):
        for program_factory, depth in ((independent_program, 500),
                                       (abba_program, 500),
                                       (racy_program, 500)):
            truth = ground_truth(program_factory())
            por = sleepset_coverage(program_factory(), depth_bound=depth)
            assert por.complete
            assert por.states == truth.states

    def test_sleepset_state_coverage_on_dining(self):
        truth = ground_truth(dining_philosophers(2))
        por = sleepset_coverage(dining_philosophers(2), depth_bound=300)
        assert por.states == truth.states
