"""Aggregator / limits bookkeeping tests."""

from repro.engine.results import (
    DivergenceKind,
    DivergenceReport,
    ExecutionResult,
    Outcome,
)
from repro.engine.strategies.base import Aggregator, ExplorationLimits


def record(outcome, *, steps=3, hit_depth=False, kind=None):
    divergence = None
    if kind is not None:
        divergence = DivergenceReport(kind=kind, culprits=(), window=1,
                                      detail="d")
    return ExecutionResult(outcome=outcome, decisions=[], steps=steps,
                           hit_depth_bound=hit_depth,
                           divergence=divergence)


def make(limits=None):
    return Aggregator("p", "fair", "dfs", limits or ExplorationLimits())


class TestCounting:
    def test_transitions_and_outcomes_accumulate(self):
        agg = make(ExplorationLimits(stop_on_first_violation=False))
        agg.add(record(Outcome.TERMINATED, steps=2))
        agg.add(record(Outcome.TERMINATED, steps=5))
        result = agg.finish(complete=True, stop_reason=None)
        assert result.executions == 2
        assert result.transitions == 7
        assert result.outcomes[Outcome.TERMINATED] == 2
        assert result.complete and not result.limit_hit

    def test_nonterminating_counter(self):
        agg = make(ExplorationLimits())
        agg.add(record(Outcome.DEPTH_PRUNED, hit_depth=True))
        assert agg.result.nonterminating_executions == 1

    def test_first_violation_execution_index(self):
        agg = make(ExplorationLimits(stop_on_first_violation=False))
        agg.add(record(Outcome.TERMINATED))
        agg.add(record(Outcome.VIOLATION))
        agg.add(record(Outcome.VIOLATION))
        assert agg.result.first_violation_execution == 2
        assert len(agg.result.violations) == 2


class TestStopReasons:
    def test_violation_stops_by_default(self):
        agg = make()
        assert agg.add(record(Outcome.VIOLATION)) == "violation"

    def test_deadlock_counts_as_violation_stop(self):
        agg = make()
        assert agg.add(record(Outcome.DEADLOCK)) == "violation"

    def test_divergence_stop_configurable(self):
        stopping = make(ExplorationLimits(stop_on_first_divergence=True))
        assert stopping.add(record(Outcome.DIVERGENCE,
                                   kind=DivergenceKind.LIVELOCK)) == \
            "divergence"
        keep_going = make(ExplorationLimits(stop_on_first_divergence=False))
        assert keep_going.add(record(Outcome.DIVERGENCE,
                                     kind=DivergenceKind.LIVELOCK)) is None

    def test_max_executions(self):
        agg = make(ExplorationLimits(max_executions=2,
                                     stop_on_first_violation=False))
        assert agg.add(record(Outcome.TERMINATED)) is None
        assert agg.add(record(Outcome.TERMINATED)) == "max-executions"
        result = agg.finish(complete=False, stop_reason="max-executions")
        assert result.limit_hit

    def test_keep_records_bounded(self):
        agg = make(ExplorationLimits(stop_on_first_violation=False,
                                     keep_records=2))
        for _ in range(5):
            agg.add(record(Outcome.VIOLATION))
        assert len(agg.result.violations) == 2
        assert agg.result.executions == 5
