"""Prefix-snapshot cache: unit behavior and executor integration.

The differential guarantee (cache on == cache off, bit for bit) is
covered end-to-end in ``tests/integration/test_snapshot_differential.py``;
this module tests the cache data structure itself and the executor's
restore/capture mechanics on small programs.
"""

import pytest

from repro.core.policies import NonfairPolicy, nonfair_policy
from repro.engine.executor import (
    ExecutorConfig,
    GuidedChooser,
    run_execution,
)
from repro.engine.results import Decision, Outcome
from repro.engine.snapshots import PrefixSnapshot, PrefixSnapshotCache
from repro.engine.strategies import explore_dfs
from repro.runtime.api import pause, yield_now
from repro.runtime.program import VMProgram


def _decisions(indices):
    return tuple(Decision("thread", i, 2, i) for i in indices)


def _entry(cache, indices, steps=None):
    return cache.capture(
        decisions=_decisions(indices),
        steps=steps if steps is not None else len(indices),
        policy=NonfairPolicy(),
    )


def two_thread_program(steps=6):
    def setup(env):
        def body():
            for _ in range(steps):
                yield from pause()

        env.spawn(body, name="a")
        env.spawn(body, name="b")

    return VMProgram(setup, name="two-thread")


class TestCacheLookup:
    def test_deepest_matching_prefix_wins(self):
        cache = PrefixSnapshotCache(interval=1)
        _entry(cache, [0])
        _entry(cache, [0, 1])
        _entry(cache, [0, 1, 0])
        hit = cache.lookup([0, 1, 0, 1])
        assert hit is not None and hit.key == (0, 1, 0)

    def test_diverging_entries_do_not_match(self):
        cache = PrefixSnapshotCache(interval=1)
        _entry(cache, [0, 0])
        assert cache.lookup([0, 1, 0]) is None
        assert cache.misses == 1

    def test_key_longer_than_guide_does_not_match(self):
        cache = PrefixSnapshotCache(interval=1)
        _entry(cache, [0, 1, 0])
        assert cache.lookup([0, 1]) is None

    def test_need_signatures_skips_signatureless_entries(self):
        cache = PrefixSnapshotCache(interval=1)
        _entry(cache, [0, 1])  # captured without coverage signatures
        assert cache.lookup([0, 1, 1], need_signatures=True) is None
        cache.capture(decisions=_decisions([0]), steps=1,
                      policy=NonfairPolicy(), signatures=["sig0"])
        hit = cache.lookup([0, 1, 1], need_signatures=True)
        assert hit is not None and hit.key == (0,)

    def test_duplicate_capture_refreshes_without_copy(self):
        cache = PrefixSnapshotCache(interval=1)
        assert _entry(cache, [0, 1]) is True
        assert cache.last_capture_outcome == "stored"
        assert _entry(cache, [0, 1]) is False
        assert len(cache) == 1 and cache.stored == 1
        assert cache.refreshes == 1
        assert cache.last_capture_outcome == "refreshed"
        assert cache.last_capture_bytes == 0

    def test_lookup_is_indexed_not_linear(self):
        # A trie lookup touches only nodes on the guide path — the other
        # cached entries, however many, are never visited.
        cache = PrefixSnapshotCache(interval=1)
        for i in range(1, 60):
            _entry(cache, [1, i])
        _entry(cache, [0])
        _entry(cache, [0, 2])
        hit = cache.lookup([0, 2, 1, 1])
        assert hit is not None and hit.key == (0, 2)
        assert cache.last_lookup_nodes <= 4  # len(guide), not entries
        cache.lookup([5, 5, 5])
        assert cache.last_lookup_nodes == 0  # no node down that branch

    def test_lookup_index_tracks_eviction_and_invalidation(self):
        cache = PrefixSnapshotCache(interval=1)
        _entry(cache, [0])
        _entry(cache, [0, 0])
        _entry(cache, [0, 1])
        cache.invalidate_not_prefix_of([0, 1])
        assert cache.lookup([0, 0, 0]) is not None  # (0,) survived
        assert cache.lookup([0, 0, 0]).key == (0,)  # (0, 0) dropped
        assert cache.lookup([0, 1, 0]).key == (0, 1)
        cache.clear()
        assert cache.lookup([0, 1, 0]) is None


class TestCacheBounds:
    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            PrefixSnapshotCache(interval=0)

    def test_memory_budget_evicts_lru(self):
        # Budget holds one two-decision entry but not two entries.
        probe = PrefixSnapshot(key=(0, 1), decisions=_decisions([0, 1]),
                               steps=2)
        cache = PrefixSnapshotCache(
            interval=1, memory_budget_bytes=probe.estimated_bytes() + 1)
        _entry(cache, [0])
        _entry(cache, [0, 1])  # over budget: evict the LRU entry
        assert len(cache) == 1
        assert cache.evictions >= 1
        assert cache.lookup([0, 1, 1]) is not None  # newest survived

    def test_oversized_entry_is_refused_not_pinned(self):
        # An entry estimated over the whole budget must not be stored:
        # eviction could never bring the cache back under budget.
        cache = PrefixSnapshotCache(interval=1, memory_budget_bytes=1)
        assert _entry(cache, [0]) is False
        assert len(cache) == 0
        assert cache.estimated_bytes == 0
        assert cache.oversized == 1
        assert cache.last_capture_outcome == "oversized"
        assert cache.last_capture_bytes == 0
        assert cache.evictions == 0

    def test_invalidate_not_prefix_of(self):
        cache = PrefixSnapshotCache(interval=1)
        _entry(cache, [0])
        _entry(cache, [0, 0])
        _entry(cache, [0, 0, 1])
        dropped = cache.invalidate_not_prefix_of([0, 1])
        assert dropped == 2
        assert cache.lookup([0, 1, 0]) is not None  # (0,) kept

    def test_clear_failure_counts(self):
        cache = PrefixSnapshotCache(interval=1)
        _entry(cache, [0])
        cache.clear(failure=True)
        assert len(cache) == 0 and cache.failures == 1
        assert cache.estimated_bytes == 0

    def test_estimated_bytes_tracks_entries(self):
        cache = PrefixSnapshotCache(interval=1)
        _entry(cache, [0, 1, 0])
        entry = cache.lookup([0, 1, 0])
        assert cache.estimated_bytes == entry.estimated_bytes()


class TestFromConfig:
    def test_disabled_config_gives_none(self):
        config = ExecutorConfig(snapshot_cache=False)
        assert PrefixSnapshotCache.from_config(
            config, two_thread_program()) is None

    def test_unsupported_program_gives_none(self):
        class NativeLike:
            supports_snapshot = False

        config = ExecutorConfig(snapshot_cache=True)
        assert PrefixSnapshotCache.from_config(config, NativeLike()) is None

    def test_vm_program_builds_cache(self):
        config = ExecutorConfig(snapshot_cache=True, snapshot_interval=4,
                                snapshot_memory_mb=8)
        cache = PrefixSnapshotCache.from_config(config, two_thread_program())
        assert cache is not None
        assert cache.interval == 4
        assert cache.memory_budget_bytes == 8 << 20


class TestExecutorIntegration:
    def test_restored_run_matches_full_replay(self):
        program = two_thread_program()
        config = ExecutorConfig(snapshot_cache=True, snapshot_interval=2)
        cache = PrefixSnapshotCache(interval=2)
        guide = [1, 0, 1, 0, 1]
        cold = run_execution(program, NonfairPolicy(), GuidedChooser(guide),
                             config, snapshot_cache=cache)
        assert cache.stored > 0
        warm = run_execution(program, NonfairPolicy(), GuidedChooser(guide),
                             config, snapshot_cache=cache)
        assert cache.hits == 1
        assert warm.outcome is cold.outcome
        assert warm.steps == cold.steps
        assert [d.index for d in warm.decisions] == \
            [d.index for d in cold.decisions]
        assert warm.trace == cold.trace

    def test_failed_fast_forward_falls_back_to_full_replay(self):
        program = two_thread_program()
        config = ExecutorConfig(snapshot_cache=True, snapshot_interval=2)
        cache = PrefixSnapshotCache(interval=2)
        guide = [0, 0, 0, 0]
        run_execution(program, NonfairPolicy(), GuidedChooser(guide),
                      config, snapshot_cache=cache)
        # Poison every cached entry so any restore diverges (a fabricated
        # decision names a thread that cannot be stepped).
        for key, entry in list(cache._entries.items()):
            poisoned = PrefixSnapshot(
                key=entry.key,
                decisions=tuple(Decision("thread", 0, 1, 999)
                                for _ in entry.decisions),
                steps=entry.steps,
                policy_state=entry.policy_state,
                policy_fallback=entry.policy_fallback,
            )
            cache._entries[key] = poisoned
            cache._trie_insert(poisoned)
        record = run_execution(program, NonfairPolicy(),
                               GuidedChooser(guide), config,
                               snapshot_cache=cache)
        assert record.outcome is Outcome.TERMINATED
        assert cache.failures == 1
        # The poisoned entries were dropped; the fallback full replay
        # repopulated the cache with fresh ones that restore cleanly.
        again = run_execution(program, NonfairPolicy(),
                              GuidedChooser(guide), config,
                              snapshot_cache=cache)
        assert cache.failures == 1
        assert again.trace == record.trace

    def test_pruner_disables_cache(self):
        program = two_thread_program()
        config = ExecutorConfig(snapshot_cache=True, snapshot_interval=1)
        cache = PrefixSnapshotCache(interval=1)
        run_execution(program, NonfairPolicy(), GuidedChooser([0, 0, 0]),
                      config, pruner=lambda inst, point: False,
                      snapshot_cache=cache)
        assert len(cache) == 0 and cache.hits == 0 and cache.misses == 0

    def test_dfs_with_cache_explores_same_tree(self):
        program = two_thread_program(steps=3)
        plain = explore_dfs(program, nonfair_policy(), ExecutorConfig())
        cached = explore_dfs(
            program, nonfair_policy(),
            ExecutorConfig(snapshot_cache=True, snapshot_interval=2))
        assert cached.executions == plain.executions
        assert cached.transitions == plain.transitions
        assert cached.complete and plain.complete
