"""Unit tests of the source-DPOR strategy mechanics.

The coverage *oracle* tests (test_dpor_coverage.py) prove the reduction
sound; this file exercises the machinery around it: race counters,
checkpoint round-trips, replayability of its records, the declined
snapshot cache, and the explicit-transition-system resource path.
"""

from repro.checker import Checker
from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.results import Outcome
from repro.engine.strategies import DporStrategy, ExplorationLimits
from repro.engine.strategies.dpor import (
    _races,
    _vector_clocks,
    _wakeup_sequence,
)
from repro.obs import Observer
from repro.runtime.program import VMProgram
from repro.statespace import TransitionSystemProgram, random_partitioned_system
from repro.sync.atomics import SharedVar
from repro.sync.mutex import Mutex
from repro.workloads.dining import dining_philosophers

LIMITS = ExplorationLimits(stop_on_first_violation=False,
                           stop_on_first_divergence=False)


def counter_program():
    def setup(env):
        x = SharedVar(0, name="x")

        def bump():
            value = yield from x.get()
            yield from x.set(value + 1)

        env.spawn(bump, name="a")
        env.spawn(bump, name="b")
        env.set_state_fn(lambda: x.peek())

    return VMProgram(setup, name="counter")


def abba_program():
    def setup(env):
        a, b = Mutex(name="a"), Mutex(name="b")

        def left():
            yield from a.acquire()
            yield from b.acquire()
            yield from b.release()
            yield from a.release()

        def right():
            yield from b.acquire()
            yield from a.acquire()
            yield from a.release()
            yield from b.release()

        env.spawn(left, name="L")
        env.spawn(right, name="R")
        env.set_state_fn(lambda: (a.owner_name(), b.owner_name()))

    return VMProgram(setup, name="abba")


class TestRaceAnalysis:
    """Vector clocks and race detection on hand-written event lists."""

    def test_program_order_is_not_a_race(self):
        tids = ["t", "t"]
        resources = [("x",), ("x",)]
        clocks = _vector_clocks(tids, resources)
        assert _races(tids, resources, clocks) == []

    def test_adjacent_dependent_pair_races(self):
        tids = ["t", "u"]
        resources = [("x",), ("x",)]
        clocks = _vector_clocks(tids, resources)
        assert _races(tids, resources, clocks) == [(0, 1)]

    def test_independent_steps_never_race(self):
        tids = ["t", "u"]
        resources = [("x",), ("y",)]
        clocks = _vector_clocks(tids, resources)
        assert _races(tids, resources, clocks) == []

    def test_transitive_hb_masks_far_race(self):
        # t(x) -> u(x,y) -> v(y): t and v are ordered only through u,
        # so only the adjacent pairs race.
        tids = ["t", "u", "v"]
        resources = [("x",), ("x", "y"), ("y",)]
        clocks = _vector_clocks(tids, resources)
        assert _races(tids, resources, clocks) == [(0, 1), (1, 2)]

    def test_wakeup_sequence_skips_dependents_of_i(self):
        # race (0, 3); step 1 depends on 0 (same resource) and is not
        # part of notdep(0); independent step 2 is.
        tids = ["t", "u", "v", "w"]
        resources = [("x",), ("x",), ("z",), ("x",)]
        clocks = _vector_clocks(tids, resources)
        idxs, initials = _wakeup_sequence(0, 3, tids, resources, clocks)
        assert idxs == [2, 3]
        assert initials == ["v", "w"]


class TestCounters:
    def run_with_observer(self, program, policy_factory):
        observer = Observer()
        result = DporStrategy(program, policy_factory, depth_bound=500,
                              limits=LIMITS, observer=observer).explore()
        return result, observer.metrics

    def test_races_detected_on_shared_counter(self):
        result, metrics = self.run_with_observer(counter_program(),
                                                 nonfair_policy())
        assert result.complete
        assert metrics.counter("dpor.races_detected").value > 0

    def test_lock_handover_on_abba(self):
        result, metrics = self.run_with_observer(abba_program(),
                                                 nonfair_policy())
        assert result.outcomes[Outcome.DEADLOCK] > 0
        assert metrics.counter("dpor.lock_handovers").value > 0

    def test_fairness_composition_runs_clean(self):
        # Under the fair policy the insertion guards must consult the
        # schedulable set; the search still terminates and finds the
        # deadlock.
        result, metrics = self.run_with_observer(abba_program(),
                                                 fair_policy())
        assert result.complete
        assert result.outcomes[Outcome.DEADLOCK] > 0


class TestCheckpointResume:
    def test_round_trip_matches_uninterrupted_run(self):
        program = dining_philosophers(2)
        baseline = DporStrategy(program, nonfair_policy(), depth_bound=300,
                                limits=LIMITS).explore()
        assert baseline.complete

        first = DporStrategy(
            program, nonfair_policy(), depth_bound=300,
            limits=ExplorationLimits(max_executions=5,
                                     stop_on_first_violation=False,
                                     stop_on_first_divergence=False))
        partial = first.explore()
        assert partial.stop_reason == "max-executions"
        state = first.state_dict()

        second = DporStrategy(program, nonfair_policy(), depth_bound=300,
                              limits=LIMITS)
        second.load_state_dict(state)
        resumed = second.explore()
        assert resumed.complete
        assert resumed.executions == baseline.executions
        assert resumed.transitions == baseline.transitions
        assert dict(resumed.outcomes) == dict(baseline.outcomes)

    def test_rejects_foreign_checkpoint(self):
        program = dining_philosophers(2)
        strategy = DporStrategy(program, nonfair_policy(), depth_bound=300)
        try:
            strategy.load_state_dict({"strategy": "dfs", "frontier": {}})
        except ValueError as exc:
            assert "dfs" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("foreign checkpoint accepted")


class TestCheckerIntegration:
    def test_replay_reproduces_deadlock(self):
        checker = Checker(abba_program(), strategy="dpor", fairness=False)
        result = checker.run()
        assert result.exploration.deadlocks
        record = result.exploration.deadlocks[0]
        replayed = checker.replay(record)
        assert replayed.outcome is Outcome.DEADLOCK
        assert [d.chosen for d in replayed.decisions] == \
            [d.chosen for d in record.decisions]

    def test_snapshot_cache_flag_changes_nothing(self):
        plain = Checker(dining_philosophers(2), strategy="dpor",
                        fairness=False, depth_bound=300).run()
        cached = Checker(dining_philosophers(2), strategy="dpor",
                         fairness=False, depth_bound=300,
                         snapshot_cache=True).run()
        assert plain.exploration.executions == cached.exploration.executions
        assert plain.exploration.transitions == cached.exploration.transitions
        assert dict(plain.exploration.outcomes) == \
            dict(cached.exploration.outcomes)

    def test_prefix_confinement_rejected(self):
        try:
            DporStrategy(dining_philosophers(2), nonfair_policy(),
                         prefix=[0])
        except ValueError as exc:
            assert "prefix" in str(exc)
        else:  # pragma: no cover
            raise AssertionError("prefix accepted")


class TestExplicitSystems:
    def test_partitioned_system_verdicts_match_dfs(self):
        for seed in (0, 1, 2, 3, 4):
            program = TransitionSystemProgram(
                random_partitioned_system(seed))
            dpor = Checker(program, strategy="dpor", fairness=False,
                           depth_bound=200).run()
            dfs = Checker(program, strategy="dfs", fairness=False,
                          depth_bound=200).run()
            assert dpor.ok == dfs.ok
            assert dpor.exploration.executions <= dfs.exploration.executions

    def test_declared_footprints_reduce(self):
        # Across a handful of seeds the honest footprints must buy a
        # strict reduction at least once (they nearly always do).
        reduced = False
        for seed in range(6):
            program = TransitionSystemProgram(
                random_partitioned_system(seed))
            dpor = Checker(program, strategy="dpor", fairness=False,
                           depth_bound=200).run()
            dfs = Checker(program, strategy="dfs", fairness=False,
                          depth_bound=200).run()
            if dpor.exploration.executions < dfs.exploration.executions:
                reduced = True
        assert reduced
