"""Executor edge cases."""

import pytest

from repro.core.policies import NonfairPolicy, nonfair_policy
from repro.engine.executor import (
    ExecutorConfig,
    GuidedChooser,
    run_execution,
)
from repro.engine.results import Outcome
from repro.engine.strategies import explore_bfs, explore_dfs
from repro.runtime.api import check, pause, yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar


def empty_program():
    return VMProgram(lambda env: None, name="empty")


def single_program(steps=2):
    def setup(env):
        def body():
            for _ in range(steps):
                yield from pause()

        env.spawn(body, name="solo")

    return VMProgram(setup, name="single")


class TestDegenerate:
    def test_program_with_no_threads_terminates_immediately(self):
        record = run_execution(empty_program(), NonfairPolicy(),
                               GuidedChooser([]), ExecutorConfig())
        assert record.outcome is Outcome.TERMINATED
        assert record.steps == 0
        assert record.decisions == []

    def test_depth_bound_zero_prunes_instantly(self):
        record = run_execution(
            single_program(), NonfairPolicy(), GuidedChooser([]),
            ExecutorConfig(depth_bound=0, on_depth_exceeded="prune"),
        )
        assert record.outcome is Outcome.DEPTH_PRUNED
        assert record.steps == 0

    def test_single_thread_has_singleton_options(self):
        record = run_execution(single_program(), NonfairPolicy(),
                               GuidedChooser([]), ExecutorConfig())
        assert all(d.options == 1 for d in record.decisions)

    def test_dfs_on_single_thread_is_one_execution(self):
        result = explore_dfs(single_program(), nonfair_policy())
        assert result.complete
        assert result.executions == 1


class TestTraceWindow:
    def test_trace_ring_buffer_bounded(self):
        record = run_execution(
            single_program(steps=50), NonfairPolicy(), GuidedChooser([]),
            ExecutorConfig(trace_window=10),
        )
        assert len(record.trace) == 10
        # The kept suffix is the *last* ten transitions.
        assert record.trace[-1].operation == "pause"


class TestKeepInstance:
    def test_final_instance_retained_when_requested(self):
        record = run_execution(
            single_program(), NonfairPolicy(), GuidedChooser([]),
            ExecutorConfig(keep_instance=True),
        )
        assert record.final_instance is not None
        assert not record.final_instance.has_live_threads()

    def test_final_instance_absent_by_default(self):
        record = run_execution(single_program(), NonfairPolicy(),
                               GuidedChooser([]), ExecutorConfig())
        assert record.final_instance is None


class TestBFSShortestCounterexample:
    def make_two_depth_bugs(self):
        """A violation reachable both early and late; BFS must report a
        shortest schedule."""

        def setup(env):
            x = SharedVar(0, name="x")

            def victim():
                value = yield from x.get()
                check(value == 0, "saw the write")
                yield from pause()
                value = yield from x.get()
                check(value == 0, "saw the write late")

            def writer():
                yield from x.set(1)

            env.spawn(victim, name="v")
            env.spawn(writer, name="w")

        return VMProgram(setup, name="two-depth")

    def test_bfs_counterexample_not_longer_than_dfs(self):
        program = self.make_two_depth_bugs()
        bfs = explore_bfs(program, nonfair_policy())
        dfs = explore_dfs(program, nonfair_policy())
        assert bfs.found_violation and dfs.found_violation
        assert len(bfs.violations[0].decisions) <= \
            len(dfs.violations[0].decisions)
