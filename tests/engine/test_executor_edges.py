"""Executor edge cases."""

import pytest

from repro.core.policies import NonfairPolicy, nonfair_policy
from repro.engine.executor import (
    ExecutorConfig,
    GuidedChooser,
    run_execution,
)
from repro.engine.results import Outcome
from repro.engine.strategies import explore_bfs, explore_dfs
from repro.runtime.api import check, pause, yield_now
from repro.runtime.errors import ExecutionHung, TaskCrash
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar


def empty_program():
    return VMProgram(lambda env: None, name="empty")


def single_program(steps=2):
    def setup(env):
        def body():
            for _ in range(steps):
                yield from pause()

        env.spawn(body, name="solo")

    return VMProgram(setup, name="single")


class TestDegenerate:
    def test_program_with_no_threads_terminates_immediately(self):
        record = run_execution(empty_program(), NonfairPolicy(),
                               GuidedChooser([]), ExecutorConfig())
        assert record.outcome is Outcome.TERMINATED
        assert record.steps == 0
        assert record.decisions == []

    def test_depth_bound_zero_prunes_instantly(self):
        record = run_execution(
            single_program(), NonfairPolicy(), GuidedChooser([]),
            ExecutorConfig(depth_bound=0, on_depth_exceeded="prune"),
        )
        assert record.outcome is Outcome.DEPTH_PRUNED
        assert record.steps == 0

    def test_single_thread_has_singleton_options(self):
        record = run_execution(single_program(), NonfairPolicy(),
                               GuidedChooser([]), ExecutorConfig())
        assert all(d.options == 1 for d in record.decisions)

    def test_dfs_on_single_thread_is_one_execution(self):
        result = explore_dfs(single_program(), nonfair_policy())
        assert result.complete
        assert result.executions == 1


class TestTraceWindow:
    def test_trace_ring_buffer_bounded(self):
        record = run_execution(
            single_program(steps=50), NonfairPolicy(), GuidedChooser([]),
            ExecutorConfig(trace_window=10),
        )
        assert len(record.trace) == 10
        # The kept suffix is the *last* ten transitions.
        assert record.trace[-1].operation == "pause"


class TestKeepInstance:
    def test_final_instance_retained_when_requested(self):
        record = run_execution(
            single_program(), NonfairPolicy(), GuidedChooser([]),
            ExecutorConfig(keep_instance=True),
        )
        assert record.final_instance is not None
        assert not record.final_instance.has_live_threads()

    def test_final_instance_absent_by_default(self):
        record = run_execution(single_program(), NonfairPolicy(),
                               GuidedChooser([]), ExecutorConfig())
        assert record.final_instance is None


class _FaultyInstance:
    """Minimal ProgramInstance whose second transition raises ``exc``."""

    def __init__(self, exc):
        self._exc = exc
        self._stepped = 0

    def thread_ids(self):
        return frozenset({0})

    def enabled_threads(self):
        return frozenset({0})

    def step(self, tid):
        self._stepped += 1
        if self._stepped >= 2:
            raise self._exc
        from repro.core.model import StepInfo
        return StepInfo(tid=tid, enabled_before=frozenset({0}),
                        enabled_after=frozenset({0}), yielded=False,
                        spawned=(), operation="op")


class _FaultyProgram:
    name = "faulty"

    def __init__(self, exc):
        self._exc = exc

    def instantiate(self):
        return _FaultyInstance(self._exc)


class TestTerminalStepAccounting:
    """Every terminal path counts the faulting transition in ``steps``."""

    def test_hung_execution_counts_faulting_step(self):
        hung = run_execution(
            _FaultyProgram(ExecutionHung("handshake timed out")),
            NonfairPolicy(), GuidedChooser([]), ExecutorConfig(),
        )
        crashed = run_execution(
            _FaultyProgram(TaskCrash("boom")),
            NonfairPolicy(), GuidedChooser([]), ExecutorConfig(),
        )
        assert hung.outcome is Outcome.ABORTED
        assert crashed.outcome is Outcome.VIOLATION
        # Both faulted on transition #2; the step totals must agree.
        assert hung.steps == crashed.steps == 2


class TestRandomCompletionDecorrelation:
    """The fallback completion RNG derives from the decision prefix, so
    different executions complete with different random schedules."""

    def make_yield_forever(self, threads=3):
        def setup(env):
            def body():
                while True:
                    yield from yield_now()

            for i in range(threads):
                env.spawn(body, name=f"t{i}")

        return VMProgram(setup, name="yield-forever")

    def _completion_tail(self, guide):
        config = ExecutorConfig(
            depth_bound=4,
            on_depth_exceeded="random-completion",
            random_completion_cap=40,
            seed=7,
        )
        record = run_execution(self.make_yield_forever(), NonfairPolicy(),
                               GuidedChooser(guide), config)
        return [s.tid for s in record.trace][4:]

    def test_different_prefixes_complete_differently(self):
        tail_a = self._completion_tail([0])
        tail_b = self._completion_tail([1])
        assert len(tail_a) == len(tail_b) == 40
        # With a shared Random(seed) both tails would be the identical
        # index sequence over three always-enabled symmetric threads.
        assert tail_a != tail_b

    def test_same_prefix_still_deterministic(self):
        assert self._completion_tail([1]) == self._completion_tail([1])


class TestBFSShortestCounterexample:
    def make_two_depth_bugs(self):
        """A violation reachable both early and late; BFS must report a
        shortest schedule."""

        def setup(env):
            x = SharedVar(0, name="x")

            def victim():
                value = yield from x.get()
                check(value == 0, "saw the write")
                yield from pause()
                value = yield from x.get()
                check(value == 0, "saw the write late")

            def writer():
                yield from x.set(1)

            env.spawn(victim, name="v")
            env.spawn(writer, name="w")

        return VMProgram(setup, name="two-depth")

    def test_bfs_counterexample_not_longer_than_dfs(self):
        program = self.make_two_depth_bugs()
        bfs = explore_bfs(program, nonfair_policy())
        dfs = explore_dfs(program, nonfair_policy())
        assert bfs.found_violation and dfs.found_violation
        assert len(bfs.violations[0].decisions) <= \
            len(dfs.violations[0].decisions)
