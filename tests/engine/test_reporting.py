"""Trace-diff and summary reporting tests."""

from repro.engine.reporting import (
    diff_traces,
    first_divergence,
    format_thread_summary,
    thread_summary,
)
from repro.engine.results import TraceStep


def step(name, op, yielded=False, tid=None):
    return TraceStep(tid=tid if tid is not None else name,
                     thread_name=name, operation=op, yielded=yielded,
                     enabled_before=frozenset())


TRACE_A = [step("a", "acquire(m)"), step("b", "load(x)"),
           step("a", "release(m)")]
TRACE_B = [step("a", "acquire(m)"), step("a", "release(m)"),
           step("b", "load(x)")]


class TestFirstDivergence:
    def test_finds_split_point(self):
        assert first_divergence(TRACE_A, TRACE_B) == 1

    def test_identical_traces(self):
        assert first_divergence(TRACE_A, TRACE_A) is None

    def test_prefix_relation(self):
        assert first_divergence(TRACE_A, TRACE_A[:2]) is None


class TestDiff:
    def test_marks_divergence_row(self):
        text = diff_traces(TRACE_A, TRACE_B, names=("pass", "fail"))
        assert "diverge at step 1" in text
        assert ">>" in text
        assert "pass" in text and "fail" in text

    def test_identical(self):
        assert diff_traces(TRACE_A, TRACE_A) == "traces are identical"

    def test_prefix_notes_continuation(self):
        text = diff_traces(TRACE_A, TRACE_A[:1])
        assert "agree for 1 steps" in text

    def test_real_counterexample_diff(self):
        """Diff a passing and a failing schedule of a real program."""
        from repro.core.policies import nonfair_policy, NonfairPolicy
        from repro.engine.executor import (
            ExecutorConfig,
            GuidedChooser,
            run_execution,
        )
        from repro.engine.strategies import explore_dfs
        from repro.runtime.api import check as rt_check
        from repro.runtime.program import VMProgram
        from repro.sync.atomics import SharedVar

        def setup(env):
            x = SharedVar(0, name="x")

            def writer():
                yield from x.set(1)
                yield from x.set(2)

            def reader():
                value = yield from x.get()
                rt_check(value != 1, "saw intermediate")

            env.spawn(writer, name="w")
            env.spawn(reader, name="r")

        program = VMProgram(setup, name="racy")
        passing = run_execution(program, NonfairPolicy(),
                                GuidedChooser([]), ExecutorConfig())
        failing = explore_dfs(program, nonfair_policy()).violations[0]
        text = diff_traces(passing.trace, failing.trace,
                           names=("passing", "failing"))
        assert "diverge" in text


class TestSummary:
    def test_counts(self):
        trace = [step("a", "op"), step("a", "yield", yielded=True),
                 step("b", "op")]
        rows = thread_summary(trace)
        assert rows[0] == ("a", 2, 1)
        assert rows[1] == ("b", 1, 0)

    def test_format(self):
        text = format_thread_summary([step("worker", "op")])
        assert "worker" in text
        assert "transitions" in text

    def test_sorted_by_transitions_descending(self):
        trace = ([step("rare", "op")] + [step("busy", "op")] * 5
                 + [step("mid", "op")] * 3)
        names = [row[0] for row in thread_summary(trace)]
        assert names == ["busy", "mid", "rare"]

    def test_empty_trace(self):
        assert thread_summary([]) == []
        assert "transitions" in format_thread_summary([])


class TestDiffEdges:
    def test_same_tid_different_operation_diverges(self):
        left = [step("a", "acquire(m)")]
        right = [step("a", "release(m)")]
        assert first_divergence(left, right) == 0
        assert "diverge at step 0" in diff_traces(left, right)

    def test_context_clamped_to_trace_bounds(self):
        left = [step("a", f"op{i}") for i in range(10)]
        right = left[:5] + [step("b", "other")] + left[6:]
        text = diff_traces(left, right, context=100)
        lines = text.splitlines()
        # header + note + one row per step, no out-of-range rows
        assert len(lines) == 2 + 10
        assert ">>   5" in text

    def test_both_empty(self):
        assert diff_traces([], []) == "traces are identical"

    def test_one_empty_notes_continuation(self):
        text = diff_traces([step("a", "op")], [])
        assert "agree for 0 steps" in text
        assert "left continues" in text

    def test_missing_rows_render_placeholder(self):
        text = diff_traces([step("a", "op1"), step("a", "op2")],
                           [step("a", "op1")])
        assert text.splitlines()[-1].rstrip().endswith("-")

    def test_yield_marker_rendered(self):
        text = diff_traces([step("a", "yield", yielded=True)],
                           [step("a", "op")])
        assert "[yield]" in text
