"""Executor tests: decisions, replay, depth bounds, preemption accounting."""

import pytest

from repro.core.policies import FairPolicy, NonfairPolicy, fair_policy, nonfair_policy
from repro.engine.executor import (
    ExecutorConfig,
    GuidedChooser,
    RandomChooser,
    run_execution,
)
from repro.engine.results import DivergenceKind, Outcome
from repro.runtime.api import choose, pause, yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar

import random


def two_step_program():
    """Two threads, two pauses each: 4!/(2!2!) = 6 interleavings."""

    def setup(env):
        def body():
            yield from pause()

        env.spawn(body, name="a")
        env.spawn(body, name="b")

    return VMProgram(setup, name="two-step")


def spin_program():
    def setup(env):
        x = SharedVar(0, name="x")

        def t():
            yield from x.set(1)

        def u():
            while (yield from x.get()) != 1:
                yield from yield_now()

        env.spawn(t, name="t")
        env.spawn(u, name="u")

    return VMProgram(setup, name="spin")


class TestDecisions:
    def test_decisions_recorded_with_options(self):
        record = run_execution(
            two_step_program(), NonfairPolicy(), GuidedChooser([]),
            ExecutorConfig(),
        )
        assert record.outcome is Outcome.TERMINATED
        assert record.steps == 4
        assert len(record.decisions) == 4
        assert record.decisions[0].options == 2  # both threads enabled
        assert record.decisions[0].kind == "thread"

    def test_replay_is_deterministic(self):
        program = spin_program()
        first = run_execution(program, FairPolicy(), GuidedChooser([1, 1, 0]),
                              ExecutorConfig(depth_bound=100))
        second = run_execution(program, FairPolicy(),
                               GuidedChooser(first.schedule),
                               ExecutorConfig(depth_bound=100))
        assert first.outcome == second.outcome
        assert first.schedule == second.schedule
        assert [s.operation for s in first.trace] == \
            [s.operation for s in second.trace]

    def test_replay_divergence_detected(self):
        program = two_step_program()
        with pytest.raises(ValueError):
            run_execution(program, NonfairPolicy(), GuidedChooser([7]),
                          ExecutorConfig())

    def test_data_choices_share_the_decision_stream(self):
        def setup(env):
            def body():
                value = yield from choose(3)
                if value == 2:
                    yield from pause()

            env.spawn(body, name="c")

        program = VMProgram(setup, name="choices")
        # Decisions: start (thread), choose-op (thread), data=2, pause.
        record = run_execution(program, NonfairPolicy(),
                               GuidedChooser([0, 0, 2]), ExecutorConfig())
        kinds = [d.kind for d in record.decisions]
        assert "data" in kinds
        data = next(d for d in record.decisions if d.kind == "data")
        assert data.options == 3
        assert data.chosen == 2


class TestDepthBound:
    def test_prune_mode(self):
        record = run_execution(
            spin_program(), NonfairPolicy(),
            GuidedChooser([1] * 50),  # keep scheduling u (spin forever)
            ExecutorConfig(depth_bound=10, on_depth_exceeded="prune"),
        )
        assert record.outcome is Outcome.DEPTH_PRUNED
        assert record.hit_depth_bound
        assert record.steps == 10

    def test_divergence_mode_classifies(self):
        record = run_execution(
            spin_program(), NonfairPolicy(),
            GuidedChooser([1] * 200),
            ExecutorConfig(depth_bound=50, on_depth_exceeded="divergence"),
        )
        assert record.outcome is Outcome.DIVERGENCE
        # Starving t is an unfair divergence, not a livelock.
        assert record.divergence.kind is DivergenceKind.UNFAIR

    def test_random_completion_terminates_spin(self):
        """Random completion is fair with probability 1, so the spin
        program terminates during completion."""
        record = run_execution(
            spin_program(), NonfairPolicy(),
            GuidedChooser([1] * 10),
            ExecutorConfig(depth_bound=10,
                           on_depth_exceeded="random-completion", seed=7),
            completion_rng=random.Random(7),
        )
        assert record.outcome is Outcome.TERMINATED
        assert record.hit_depth_bound
        assert record.completed_randomly
        # Completion decisions are not recorded (not replayable).
        assert len(record.decisions) <= 10

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            run_execution(
                spin_program(), NonfairPolicy(), GuidedChooser([1] * 10),
                ExecutorConfig(depth_bound=1, on_depth_exceeded="nope"),
            )


class TestPreemptionAccounting:
    def make_ab(self):
        def setup(env):
            def body():
                yield from pause()
                yield from pause()

            env.spawn(body, name="a")
            env.spawn(body, name="b")

        return VMProgram(setup, name="ab")

    def test_alternation_counts_preemptions(self):
        # Schedule a, b, a, b, a, b: each switch away from an enabled
        # thread is a preemption.
        record = run_execution(
            self.make_ab(), NonfairPolicy(),
            GuidedChooser([0, 1, 0, 1, 0, 0]),
            ExecutorConfig(),
        )
        assert record.outcome is Outcome.TERMINATED
        # Recount under a bound: same schedule has 4 preemptions
        # (a->b, b->a, a->b, b->a; the final steps run to completion).
        bounded = run_execution(
            self.make_ab(), NonfairPolicy(),
            GuidedChooser([0, 1, 0, 1, 0, 0]),
            ExecutorConfig(preemption_bound=10),
        )
        assert bounded.preemptions == 4

    def test_bound_zero_forces_run_to_completion(self):
        record = run_execution(
            self.make_ab(), NonfairPolicy(), GuidedChooser([]),
            ExecutorConfig(preemption_bound=0),
        )
        assert record.outcome is Outcome.TERMINATED
        assert record.preemptions == 0
        names = [s.thread_name for s in record.trace]
        # With zero preemptions each thread runs to completion in turn.
        assert names == ["a", "a", "a", "b", "b", "b"]

    def test_switch_after_yield_is_free(self):
        def setup(env):
            def a():
                yield from yield_now()
                yield from pause()

            def b():
                yield from pause()
                yield from pause()

            env.spawn(a, name="a")
            env.spawn(b, name="b")

        program = VMProgram(setup, name="yielding")
        # Schedule: a start, a yield, b start (switch after a's yield —
        # FREE), b pause1 (continue), a pause (switch away from enabled,
        # non-yielding b — PREEMPTION), b pause2 (a finished — free).
        record = run_execution(
            program, NonfairPolicy(), GuidedChooser([0, 0, 1, 1, 0, 0]),
            ExecutorConfig(preemption_bound=10),
        )
        assert record.outcome is Outcome.TERMINATED
        assert record.preemptions == 1

    def test_fairness_forced_switch_not_counted(self):
        """When the fair scheduler deprioritizes the running thread, the
        forced switch must not count as a preemption (Section 4)."""
        program = spin_program()

        class GreedyU:
            def pick(self, kind, options):
                return options - 1

        record = run_execution(
            program, FairPolicy(), GreedyU(),
            ExecutorConfig(preemption_bound=0, depth_bound=100),
        )
        # u spins until the priority edge forces t in; with bound 0 the
        # execution would be impossible if that switch were counted.
        assert record.outcome is Outcome.TERMINATED
        assert record.preemptions == 0


class TestMonitors:
    def test_config_monitor_violation(self):
        from repro.runtime.errors import AssertionViolation

        def paranoid(instance):
            raise AssertionViolation("always fails")

        record = run_execution(
            two_step_program(), NonfairPolicy(), GuidedChooser([]),
            ExecutorConfig(monitors=(paranoid,)),
        )
        assert record.outcome is Outcome.VIOLATION
        assert "always fails" in str(record.violation)

    def test_instance_monitor_runs(self):
        from repro.engine.monitors import never

        def setup(env):
            x = SharedVar(0, name="x")

            def body():
                yield from x.set(5)

            env.spawn(body, name="w")
            env.add_monitor(never(lambda: x.peek() == 5, "x hit 5"))

        record = run_execution(
            VMProgram(setup, name="monitored"), NonfairPolicy(),
            GuidedChooser([]), ExecutorConfig(),
        )
        assert record.outcome is Outcome.VIOLATION
        assert "x hit 5" in str(record.violation)


class TestRandomChooser:
    def test_seeded_randomness_is_reproducible(self):
        program = two_step_program()
        runs = []
        for _ in range(2):
            record = run_execution(
                program, NonfairPolicy(),
                RandomChooser(random.Random(42)), ExecutorConfig(),
            )
            runs.append([s.thread_name for s in record.trace])
        assert runs[0] == runs[1]
