"""Divergence classifier tests on synthetic traces."""

from repro.engine.classify import classify_divergence
from repro.engine.results import DivergenceKind, TraceStep


def step(tid, yielded=False, enabled=("t", "u")):
    return TraceStep(tid=tid, thread_name=str(tid), operation="op",
                     yielded=yielded, enabled_before=frozenset(enabled))


class TestLivelock:
    def test_all_threads_running_and_yielding(self):
        trace = []
        for _ in range(50):
            trace.append(step("t", yielded=False))
            trace.append(step("t", yielded=True))
            trace.append(step("u", yielded=False))
            trace.append(step("u", yielded=True))
        report = classify_divergence(trace)
        assert report.kind is DivergenceKind.LIVELOCK
        assert set(report.culprits) == {"t", "u"}

    def test_single_thread_livelock(self):
        # A lone thread spinning *with* yields while nothing else is
        # enabled: fair nontermination.
        trace = [step("t", yielded=(i % 2 == 0), enabled=("t",))
                 for i in range(100)]
        report = classify_divergence(trace)
        assert report.kind is DivergenceKind.LIVELOCK


class TestGoodSamaritan:
    def test_spinning_thread_without_yields(self):
        trace = [step("u", yielded=False) for _ in range(100)]
        report = classify_divergence(trace)
        assert report.kind is DivergenceKind.GOOD_SAMARITAN_VIOLATION
        assert report.culprits == ("u",)
        assert "without yielding" in report.detail

    def test_mixed_spinner_blamed_not_yielders(self):
        trace = []
        for _ in range(40):
            trace.append(step("u", yielded=False))  # spinner
            trace.append(step("t", yielded=True))  # good samaritan
        report = classify_divergence(trace)
        assert report.kind is DivergenceKind.GOOD_SAMARITAN_VIOLATION
        assert report.culprits == ("u",)

    def test_threshold_respected(self):
        # A thread scheduled just a few times without yielding is not
        # blamed (it may simply be finishing up).
        trace = [step("t", yielded=True) for _ in range(60)]
        trace += [step("u", yielded=False) for _ in range(3)]
        trace += [step("t", yielded=True) for _ in range(60)]
        report = classify_divergence(trace, gs_schedule_threshold=8)
        assert report.kind is not DivergenceKind.GOOD_SAMARITAN_VIOLATION


class TestUnfair:
    def test_starved_enabled_thread(self):
        # u runs (yielding, so not a GS violation) while t stays enabled
        # and never scheduled: an unfair schedule, not a program error.
        trace = [step("u", yielded=True, enabled=("t", "u"))
                 for _ in range(100)]
        report = classify_divergence(trace)
        assert report.kind is DivergenceKind.UNFAIR
        assert report.culprits == ("t",)

    def test_empty_trace(self):
        report = classify_divergence([])
        assert report.kind is DivergenceKind.UNFAIR
        assert report.window == 0

    def test_thread_disabled_mid_window_not_starved(self):
        # t is enabled early in the window but blocks (or finishes)
        # partway through and never re-enables: it left the race on its
        # own, so blaming the scheduler for starving it is wrong.  The
        # yielding survivor is a livelock, not an unfair schedule.
        trace = [step("u", yielded=True, enabled=("t", "u"))
                 for _ in range(30)]
        trace += [step("u", yielded=True, enabled=("u",))
                  for _ in range(70)]
        report = classify_divergence(trace)
        assert report.kind is DivergenceKind.LIVELOCK

    def test_thread_starved_through_window_end(self):
        # Still enabled in the trailing part of the window and never
        # scheduled anywhere in it: genuinely starved.
        trace = [step("u", yielded=True, enabled=("u",))
                 for _ in range(30)]
        trace += [step("u", yielded=True, enabled=("t", "u"))
                  for _ in range(70)]
        report = classify_divergence(trace)
        assert report.kind is DivergenceKind.UNFAIR
        assert report.culprits == ("t",)


class TestWindowing:
    def test_only_suffix_analyzed(self):
        # Early unfairness followed by a long livelock suffix: the
        # classifier must judge the suffix.
        trace = [step("u", yielded=True) for _ in range(500)]
        for _ in range(200):
            trace.append(step("t", yielded=True))
            trace.append(step("u", yielded=True))
        report = classify_divergence(trace, window=256)
        assert report.kind is DivergenceKind.LIVELOCK
        assert report.window == 256
