"""Search strategy tests: DFS completeness, BFS, random, context bounding."""

from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.results import Outcome
from repro.engine.strategies import (
    ExplorationLimits,
    explore_bfs,
    explore_context_bounded,
    explore_dfs,
    explore_random,
    iterative_context_bounding,
    next_dfs_guide,
)
from repro.engine.results import Decision
from repro.runtime.api import check, pause
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar


def interleaving_program(steps_per_thread=2):
    """Two threads with n pauses each: C(2n, n) complete interleavings."""

    def setup(env):
        def body():
            for _ in range(steps_per_thread):
                yield from pause()

        env.spawn(body, name="a")
        env.spawn(body, name="b")

    return VMProgram(setup, name=f"interleave({steps_per_thread})")


def racy_assert_program():
    """Fails only on one specific interleaving."""

    def setup(env):
        x = SharedVar(0, name="x")

        def writer():
            yield from x.set(1)
            yield from x.set(2)

        def reader():
            value = yield from x.get()
            check(value != 1, "reader saw the intermediate value")

        env.spawn(writer, name="w")
        env.spawn(reader, name="r")

    return VMProgram(setup, name="racy")


class TestDFS:
    def test_enumerates_all_interleavings(self):
        # 2 threads x 3 transitions each (start + 2 pauses): the DFS must
        # enumerate exactly C(6, 3) = 20 executions.
        result = explore_dfs(interleaving_program(2), nonfair_policy())
        assert result.complete
        assert result.executions == 20
        assert result.outcomes[Outcome.TERMINATED] == 20

    def test_finds_racy_violation(self):
        result = explore_dfs(racy_assert_program(), nonfair_policy())
        assert result.found_violation
        assert "intermediate value" in str(result.violations[0].violation)
        assert result.first_violation_execution is not None

    def test_stop_on_first_violation_stops_early(self):
        stop = explore_dfs(racy_assert_program(), nonfair_policy())
        both = explore_dfs(
            racy_assert_program(), nonfair_policy(),
            limits=ExplorationLimits(stop_on_first_violation=False),
        )
        assert stop.executions <= both.executions
        assert both.complete

    def test_max_executions_limit(self):
        result = explore_dfs(
            interleaving_program(3), nonfair_policy(),
            limits=ExplorationLimits(max_executions=5),
        )
        assert result.executions == 5
        assert result.limit_hit
        assert not result.complete

    def test_coverage_collected(self):
        coverage = CoverageTracker()
        result = explore_dfs(interleaving_program(1), nonfair_policy(),
                             coverage=coverage)
        assert result.states_covered == coverage.count
        assert coverage.count > 0
        assert coverage.history  # per-execution checkpoints recorded


class TestNextGuide:
    def decision(self, index, options):
        return Decision("thread", index, options, index)

    def test_bumps_deepest_alternative(self):
        decisions = [self.decision(0, 2), self.decision(1, 2),
                     self.decision(0, 3)]
        assert next_dfs_guide(decisions) == [0, 1, 1]

    def test_backtracks_over_exhausted_suffix(self):
        decisions = [self.decision(0, 2), self.decision(1, 2),
                     self.decision(2, 3)]
        assert next_dfs_guide(decisions) == [1]

    def test_exhausted_tree_returns_none(self):
        decisions = [self.decision(1, 2), self.decision(2, 3)]
        assert next_dfs_guide(decisions) is None
        assert next_dfs_guide([]) is None


class TestBFS:
    def test_bfs_explores_same_leaves_as_dfs(self):
        coverage_dfs = CoverageTracker()
        coverage_bfs = CoverageTracker()
        explore_dfs(interleaving_program(1), nonfair_policy(),
                    coverage=coverage_dfs)
        result = explore_bfs(interleaving_program(1), nonfair_policy(),
                             coverage=coverage_bfs)
        assert result.complete
        assert coverage_bfs.signatures() == coverage_dfs.signatures()

    def test_bfs_finds_violation(self):
        result = explore_bfs(racy_assert_program(), nonfair_policy())
        assert result.found_violation


class TestRandom:
    def test_runs_requested_executions(self):
        result = explore_random(interleaving_program(2), nonfair_policy(),
                                executions=17, seed=3)
        assert result.executions == 17
        assert result.outcomes[Outcome.TERMINATED] == 17

    def test_seed_determinism(self):
        coverage = [CoverageTracker(), CoverageTracker()]
        for tracker in coverage:
            explore_random(interleaving_program(2), nonfair_policy(),
                           executions=10, seed=9, coverage=tracker)
        assert coverage[0].signatures() == coverage[1].signatures()

    def test_usually_finds_easy_race(self):
        result = explore_random(racy_assert_program(), nonfair_policy(),
                                executions=100, seed=1)
        assert result.found_violation


class TestContextBounding:
    def test_smaller_bound_explores_fewer_executions(self):
        sizes = []
        for bound in (0, 1, 2):
            result = explore_context_bounded(
                interleaving_program(2), nonfair_policy(), bound,
                limits=ExplorationLimits(stop_on_first_violation=False),
            )
            assert result.complete
            sizes.append(result.executions)
        assert sizes[0] < sizes[1] < sizes[2]
        assert sizes[0] == 2  # only the two run-to-completion orders

    def test_strategy_name_includes_bound(self):
        result = explore_context_bounded(interleaving_program(1),
                                         nonfair_policy(), 1)
        assert result.strategy_name == "cb=1"

    def test_negative_bound_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            explore_context_bounded(interleaving_program(1),
                                    nonfair_policy(), -1)

    def test_iterative_stops_at_first_violating_bound(self):
        results = iterative_context_bounding(
            racy_assert_program(), nonfair_policy(), 3,
        )
        assert results[-1].found_violation
        assert len(results) <= 4

    def test_fair_policy_composes_with_bounding(self):
        result = explore_context_bounded(
            interleaving_program(2), fair_policy(), 1,
            ExecutorConfig(depth_bound=100),
            limits=ExplorationLimits(stop_on_first_violation=False),
        )
        assert result.complete
        assert not result.found_divergence
