"""Shard planner invariants: disjoint, exhaustive, worker-count free.

The prefix planner is probed against the real choice tree of small
workloads; the partition invariants here are what the serial-equivalence
guarantees in docs/parallel.md rest on.
"""

import pytest

from repro.core.policies import fair_policy
from repro.engine.executor import ExecutorConfig, GuidedChooser, run_execution
from repro.parallel import (
    DEFAULT_SHARD_TARGET,
    Shard,
    ShardPlan,
    plan_prefix_shards,
    plan_range_shards,
)
from repro.workloads.dining import dining_philosophers


def dining_probe(config=None):
    program = dining_philosophers(2)
    config = config or ExecutorConfig(depth_bound=300)

    def probe(prefix):
        return run_execution(program, fair_policy()(),
                             GuidedChooser(prefix), config)

    return probe


class TestPrefixPlanning:
    def test_partition_is_disjoint_and_ordered(self):
        plan = plan_prefix_shards(dining_probe(), target=8)
        prefixes = [s.prefix for s in plan.shards]
        assert len(plan.shards) >= 8
        assert prefixes == sorted(prefixes)
        assert len(set(prefixes)) == len(prefixes)
        # Disjoint subtrees: no shard prefix extends another.
        for i, a in enumerate(prefixes):
            for b in prefixes[i + 1:]:
                assert a != b[:len(a)], f"{a} is a prefix of {b}"

    def test_shard_indices_are_sequential(self):
        plan = plan_prefix_shards(dining_probe(), target=6)
        assert [s.index for s in plan.shards] == list(range(len(plan.shards)))
        assert all(s.kind == "prefix" for s in plan.shards)

    def test_preamble_holds_one_record_per_interior_probe(self):
        plan = plan_prefix_shards(dining_probe(), target=8)
        # Every preamble record extends its probe prefix (interior node);
        # leaves never land in the preamble.
        assert plan.preamble
        for record in plan.preamble:
            assert record.decisions

    def test_plan_is_independent_of_worker_count(self):
        # The planner has no worker-count input at all; two plans built
        # with the same target are identical.
        first = plan_prefix_shards(dining_probe(), target=DEFAULT_SHARD_TARGET)
        second = plan_prefix_shards(dining_probe(),
                                    target=DEFAULT_SHARD_TARGET)
        assert [s.prefix for s in first.shards] == \
            [s.prefix for s in second.shards]

    def test_probe_budget_bounds_planning(self):
        calls = [0]
        real = dining_probe()

        def counting(prefix):
            calls[0] += 1
            return real(prefix)

        plan = plan_prefix_shards(counting, target=4, max_probes=3)
        assert calls[0] <= 3
        assert plan.shards  # still yields a usable partition

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError, match="positive"):
            plan_prefix_shards(dining_probe(), target=0)


class TestRangePlanning:
    def test_ranges_tile_the_walk_space(self):
        plan = plan_range_shards(103, target=16)
        assert len(plan.shards) == 16
        covered = []
        for shard in plan.shards:
            assert shard.kind == "range"
            covered.extend(range(shard.start, shard.start + shard.count))
        assert covered == list(range(103))

    def test_small_totals_get_one_walk_per_shard(self):
        plan = plan_range_shards(5, target=16)
        assert len(plan.shards) == 5
        assert all(s.count == 1 for s in plan.shards)

    def test_zero_total_is_an_empty_plan(self):
        assert plan_range_shards(0, target=16).shards == []


class TestShardSerialization:
    def test_shard_round_trip(self):
        shard = Shard(index=3, kind="prefix", prefix=(1, 0, 2))
        assert Shard.from_state(shard.to_state()) == shard
        walk = Shard(index=0, kind="range", start=25, count=75)
        assert Shard.from_state(walk.to_state()) == walk

    def test_plan_round_trip_preserves_preamble(self):
        plan = plan_prefix_shards(dining_probe(), target=6)
        restored = ShardPlan.from_state(plan.to_state())
        assert [s.prefix for s in restored.shards] == \
            [s.prefix for s in plan.shards]
        assert len(restored.preamble) == len(plan.preamble)
        assert [r.steps for r in restored.preamble] == \
            [r.steps for r in plan.preamble]

    def test_describe_names_the_slice(self):
        assert "prefix" in Shard(0, "prefix", prefix=(1,)).describe()
        assert "[10, 15)" in Shard(0, "range", start=10, count=5).describe()
