"""Coordinator semantics: crashes, checkpoints, stops, telemetry.

The serial-equivalence suite checks *what* a parallel search computes;
this one checks *how* it behaves when the world misbehaves — worker
processes dying mid-shard, operator limits firing mid-run, resumes, and
the observability contract (events, metrics, progress parity).
"""

import os

import pytest

from repro.checker import Checker
from repro.obs import CollectingSink, Observer, ShardFinished, ShardStarted, WorkerCrashed
from repro.resilience import load_checkpoint
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.workloads.dining import dining_philosophers


def killer_program(safe_pid):
    """A program that hard-kills any process except ``safe_pid`` when the
    reader observes the writer's store.

    Schedules where ``u`` reads after ``t``'s write are therefore fatal
    to worker processes but harmless to the coordinator's planner probes
    (which run in the parent, ``safe_pid``).  ``os._exit`` bypasses all
    Python-level crash capture, so this models a genuine native crash.
    """

    def setup(env):
        x = SharedVar(0, name="x")

        def t():
            yield from x.set(1)

        def u():
            value = yield from x.get()
            if value == 1 and os.getpid() != safe_pid:
                os._exit(17)

        env.spawn(t, name="t")
        env.spawn(u, name="u")

    return VMProgram(setup, name="killer")


def counted(program, **kwargs):
    return Checker(program, depth_bound=300,
                   stop_on_first_violation=False,
                   stop_on_first_divergence=False, **kwargs)


class TestWorkerCrashes:
    def test_crashing_shard_is_requeued_then_quarantined(self):
        sink = CollectingSink()
        result = counted(killer_program(os.getpid()), workers=2,
                         observer=Observer(sink=sink)).run()
        crashes = sink.of_type(WorkerCrashed)
        assert crashes, "worker deaths must surface as WorkerCrashed events"
        assert any(e.requeued for e in crashes), "first death retries"
        assert any(not e.requeued for e in crashes), \
            "exhausted retries quarantine the shard"
        assert not result.exploration.complete
        assert any("quarantined" in w for w in result.warnings)

    def test_healthy_shards_still_merge_around_the_quarantine(self):
        result = counted(killer_program(os.getpid()), workers=2).run()
        # The crash-free subtrees (u reads before t writes) still count.
        assert result.exploration.executions > 0


class TestParallelCheckpointResume:
    def test_limit_stop_then_resume_completes(self, tmp_path):
        ckpt = str(tmp_path / "par.ckpt")
        reference = counted(dining_philosophers(2), workers=2).run()

        partial = counted(dining_philosophers(2), workers=2,
                          max_executions=10, checkpoint_path=ckpt,
                          checkpoint_interval=1,
                          handle_signals=False).run()
        assert partial.exploration.stop_reason == "max-executions"
        assert partial.exploration.limit_hit
        assert not partial.exploration.complete

        payload = load_checkpoint(ckpt)
        assert payload["state"]["strategy"] == "parallel"
        assert payload["state"]["inner"] == "dfs"

        resumed = counted(dining_philosophers(2), workers=2,
                          handle_signals=False).run(resume_from=ckpt)
        assert resumed.exploration.executions == \
            reference.exploration.executions
        assert resumed.exploration.transitions == \
            reference.exploration.transitions
        assert resumed.exploration.complete

    def test_serial_refuses_parallel_checkpoint(self, tmp_path):
        ckpt = str(tmp_path / "par.ckpt")
        counted(dining_philosophers(2), workers=2, max_executions=10,
                checkpoint_path=ckpt, checkpoint_interval=1,
                handle_signals=False).run()
        with pytest.raises(ValueError, match="parallel"):
            counted(dining_philosophers(2),
                    handle_signals=False).run(resume_from=ckpt)

    def test_parallel_refuses_serial_checkpoint(self, tmp_path):
        ckpt = str(tmp_path / "serial.ckpt")
        counted(dining_philosophers(2), max_executions=10,
                checkpoint_path=ckpt, checkpoint_interval=1,
                handle_signals=False).run()
        with pytest.raises(ValueError, match="cannot resume"):
            counted(dining_philosophers(2), workers=2,
                    handle_signals=False).run(resume_from=ckpt)

    def test_parallel_refuses_other_inner_strategy(self, tmp_path):
        ckpt = str(tmp_path / "par.ckpt")
        counted(dining_philosophers(2), workers=2, max_executions=10,
                checkpoint_path=ckpt, checkpoint_interval=1,
                handle_signals=False).run()
        with pytest.raises(ValueError, match="written for strategy"):
            counted(dining_philosophers(2), workers=2, strategy="bfs",
                    handle_signals=False).run(resume_from=ckpt)


class TestTelemetryParity:
    def test_events_and_metrics_reflect_the_merge(self):
        sink = CollectingSink()
        observer = Observer(sink=sink)
        result = counted(dining_philosophers(2), workers=2,
                         observer=observer).run()
        merged = result.exploration

        started = sink.of_type(ShardStarted)
        finished = sink.of_type(ShardFinished)
        assert started and finished
        assert sum(e.executions for e in finished) == merged.executions
        # Reconciled counters equal the merged (deterministic) totals.
        assert observer.metrics.counter("executions").value == \
            merged.executions
        assert observer.metrics.counter("transitions").value == \
            merged.transitions
        assert observer.metrics.counter("shards.completed").value == \
            len(finished)

    def test_metrics_json_parity_with_serial(self, tmp_path):
        import json

        def metrics_for(workers):
            observer = Observer()
            counted(dining_philosophers(2), workers=workers,
                    observer=observer).run()
            path = tmp_path / f"m{workers}.json"
            observer.dump_json(str(path))
            counters = json.loads(path.read_text())["counters"]
            # Untouched counters are never created (on either path), so
            # absent and zero are the same reading.
            return {k: counters.get(k, 0) for k in
                    ("executions", "transitions", "violations", "deadlocks")}

        assert metrics_for(4) == metrics_for(1)


class TestInlineFallback:
    def test_platforms_without_fork_run_the_same_plan(self, monkeypatch):
        import repro.parallel.coordinator as coordinator_module

        monkeypatch.setattr(coordinator_module, "_fork_context", lambda: None)
        reference = counted(dining_philosophers(2)).run()
        inline = counted(dining_philosophers(2), workers=4).run()
        assert inline.exploration.executions == \
            reference.exploration.executions
        assert inline.exploration.transitions == \
            reference.exploration.transitions
        assert inline.exploration.complete


class TestValidation:
    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError, match="positive"):
            Checker(dining_philosophers(2), workers=0)

    def test_workers_one_is_exactly_the_serial_path(self):
        # workers=1 must not even touch the parallel machinery.
        result = counted(dining_philosophers(2), workers=1).run()
        assert result.exploration.complete
        assert result.exploration.executions == 42
