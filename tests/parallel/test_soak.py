"""Wall-clock soak runs of the parallel checker (``-m soak`` only).

Each paper workload is hammered repeatedly under ``workers=4`` with
crash capture on until its slice of the ``REPRO_SOAK_SECONDS`` budget
(default 60s, split evenly) is spent.  After every run the suite
asserts the process came back clean: no leaked threads, no leaked
worker processes, no unquarantined crashes, and verdicts that stay
stable from iteration to iteration.

Excluded from tier-1 via ``addopts = "-m 'not soak'"``; CI runs it as a
dedicated job with ``pytest -m soak``.
"""

import multiprocessing
import os
import threading
import time

import pytest

from repro.checker import Checker
from repro.workloads.boundedbuffer import bounded_buffer_program
from repro.workloads.dining import dining_philosophers
from repro.workloads.wsq import work_stealing_queue

SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))

WORKLOADS = [
    ("dining", lambda: dining_philosophers(2), dict(depth_bound=300)),
    ("boundedbuffer",
     lambda: bounded_buffer_program(items=1, consumers=1),
     dict(depth_bound=400, preemption_bound=1)),
    ("wsq", lambda: work_stealing_queue(items=1, stealers=1, bug=1),
     dict(depth_bound=400, preemption_bound=1)),
]

pytestmark = pytest.mark.soak


@pytest.mark.parametrize("name,factory,kwargs",
                         WORKLOADS, ids=[w[0] for w in WORKLOADS])
def test_soak_workload_under_workers(name, factory, kwargs, tmp_path):
    budget = SOAK_SECONDS / len(WORKLOADS)
    deadline = time.monotonic() + budget
    baseline_threads = threading.active_count()

    verdicts = set()
    iterations = 0
    while time.monotonic() < deadline:
        result = Checker(
            factory(), workers=4,
            stop_on_first_violation=False,
            stop_on_first_divergence=False,
            max_crashes=100,
            quarantine_dir=str(tmp_path / f"q{iterations}"),
            handle_signals=False,
            max_seconds=max(1.0, deadline - time.monotonic()),
            **kwargs,
        ).run()
        iterations += 1
        verdicts.add(result.ok)

        # These workloads never crash: every crash would be a harness
        # bug, and a quarantine warning would mean a shard was dropped.
        assert result.exploration.outcomes.get("crashed", 0) == 0
        assert not any("quarantined" in w for w in result.warnings), \
            result.warnings

        # The pool must be torn down after every run: no leaked worker
        # processes and no leaked coordinator threads.
        leaked = multiprocessing.active_children()
        assert not leaked, f"leaked worker processes: {leaked}"
        assert threading.active_count() <= baseline_threads + 1, (
            f"thread leak: {threading.enumerate()}"
        )

    assert iterations >= 1
    assert len(verdicts) == 1, (
        f"verdict flapped across {iterations} soak iterations of {name}"
    )
