"""Parallel telemetry: worker spans and phase timers merge into one
coordinator-side timeline (docs/profiling.md)."""

import json

import pytest

from repro.checker import Checker
from repro.obs import Observer
from repro.obs.profile import chrome_trace_document
from repro.workloads.dining import dining_philosophers


@pytest.fixture(scope="module")
def merged():
    """One workers=4 search with an observer; spans + timers merged."""
    observer = Observer()
    result = Checker(
        dining_philosophers(2),
        depth_bound=300,
        stop_on_first_violation=False,
        stop_on_first_divergence=False,
        handle_signals=False,
        workers=4,
        observer=observer,
    ).run()
    return result, observer


class TestMergedSpans:
    def test_every_shard_has_an_executing_span(self, merged):
        result, observer = merged
        executing = observer.spans.of_category("executing")
        shards = {span.args["shard"] for span in executing}
        merged_instants = observer.spans.of_category("merged")
        assert executing, "no executing spans recorded"
        # Acceptance criterion: >= 1 span per shard in the merged trace.
        assert {s.args.get("shard") for s in merged_instants} == shards
        assert all(span.duration is not None and span.duration >= 0
                   for span in executing)

    def test_plan_and_search_spans_are_present(self, merged):
        _, observer = merged
        cats = {span.cat for span in observer.spans.spans}
        assert "planned" in cats
        assert "assigned" in cats
        assert "search" in cats

    def test_worker_lanes_are_named(self, merged):
        _, observer = merged
        lanes = observer.spans.lane_names
        assert lanes[0] == "coordinator"
        worker_lanes = {name for pid, name in lanes.items() if pid > 0}
        assert worker_lanes  # at least one worker (or the inline lane)
        executing_pids = {s.pid for s in
                          observer.spans.of_category("executing")}
        assert executing_pids <= set(lanes)

    def test_merged_span_ids_are_unique(self, merged):
        _, observer = merged
        sids = [span.sid for span in observer.spans.spans]
        assert len(sids) == len(set(sids))

    def test_worker_phase_timers_are_aggregated(self, merged):
        _, observer = merged
        totals = observer.timers.totals
        assert totals.get("execute", 0.0) > 0.0
        assert observer.timers.counts.get("execute", 0) > 0

    def test_chrome_trace_export_of_the_merged_timeline(self, merged):
        _, observer = merged
        doc = chrome_trace_document(
            observer.spans.spans,
            timers=observer.timers.to_dict(),
            lane_names=observer.spans.lane_names,
        )
        text = json.dumps(doc)  # must serialize
        assert "executing" in text
        pids = {e["pid"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert len(pids) >= 2  # coordinator totals + at least one lane


class TestSerialSpans:
    def test_serial_search_records_a_search_span(self):
        observer = Observer()
        Checker(
            dining_philosophers(2),
            depth_bound=300,
            stop_on_first_violation=False,
            stop_on_first_divergence=False,
            handle_signals=False,
            observer=observer,
        ).run()
        search = observer.spans.of_category("search")
        assert len(search) == 1
        assert search[0].duration is not None

    def test_no_observer_means_no_span_machinery(self):
        checker = Checker(
            dining_philosophers(2),
            depth_bound=300,
            stop_on_first_violation=False,
            stop_on_first_divergence=False,
            handle_signals=False,
            workers=2,
        )
        result = checker.run()
        assert result.ok
