"""Differential harness: a parallel search must equal the serial one.

docs/parallel.md promises that for *counted* sweeps (no early-stop
limits) the merged totals of a parallel run are byte-identical to a
serial run's, independent of the worker count, and that with early
stopping the *verdict* (and the replayability of the counterexample)
is preserved.  This suite checks those promises differentially for
every strategy at workers 1, 2, and 4 on three workloads of the paper's
evaluation (dining philosophers, bounded buffer, work-stealing queue).

Sleep-set POR and source-DPOR ignore the preemption bound, which makes
the wsq tree enormous; the wsq rows therefore skip ``por`` and ``dpor``
(a serial limitation, not a parallel one).
"""

import pytest

from repro.checker import Checker
from repro.engine.persistence import load_and_replay, save_schedule
from repro.engine.results import Outcome
from repro.workloads.boundedbuffer import bounded_buffer_program
from repro.workloads.dining import dining_philosophers
from repro.workloads.wsq import work_stealing_queue

WORKERS = [1, 2, 4]

#: (workload id, factory, checker kwargs) — small enough that the full
#: bounded tree is explored in well under a second per strategy.
WORKLOADS = {
    "dining": (lambda: dining_philosophers(2), dict(depth_bound=300)),
    "boundedbuffer": (lambda: bounded_buffer_program(items=1, consumers=1),
                      dict(depth_bound=400, preemption_bound=1)),
    "wsq": (lambda: work_stealing_queue(items=1, stealers=1, bug=1),
            dict(depth_bound=400, preemption_bound=1)),
}

#: Counted-sweep matrix: every strategy on every workload, except the
#: prohibitively slow por/dpor x wsq pairings (see module docstring).
COUNTED = [
    (workload, strategy)
    for workload in WORKLOADS
    for strategy in ("dfs", "bfs", "por", "icb", "random", "dpor")
    if not (workload == "wsq" and strategy in ("por", "bfs", "dpor"))
]


def run_counted(workload, strategy, workers):
    factory, kwargs = WORKLOADS[workload]
    return Checker(
        factory(), strategy=strategy, workers=workers,
        stop_on_first_violation=False, stop_on_first_divergence=False,
        random_executions=60, seed=7, **kwargs,
    ).run()


def totals(result):
    e = result.exploration
    return {
        "executions": e.executions,
        "transitions": e.transitions,
        "outcomes": {o.value: n for o, n in e.outcomes.items() if n},
        "complete": e.complete,
        "stop_reason": e.stop_reason,
        "nonterminating": e.nonterminating_executions,
        "first_violation": e.first_violation_execution,
    }


@pytest.mark.parametrize("workload,strategy", COUNTED)
def test_counted_sweep_totals_are_worker_count_independent(workload,
                                                           strategy):
    reference = totals(run_counted(workload, strategy, workers=1))
    for workers in WORKERS[1:]:
        assert totals(run_counted(workload, strategy, workers)) == \
            reference, f"{workload}/{strategy} diverged at workers={workers}"


@pytest.mark.parametrize("strategy", ["dfs", "icb", "random"])
@pytest.mark.parametrize("workers", WORKERS[1:])
def test_violation_verdict_matches_serial(strategy, workers):
    factory, kwargs = WORKLOADS["wsq"]
    serial = Checker(factory(), strategy=strategy, random_executions=300,
                     seed=3, **kwargs).run()
    parallel = Checker(factory(), strategy=strategy, random_executions=300,
                       seed=3, workers=workers, **kwargs).run()
    assert not serial.ok
    assert parallel.ok == serial.ok
    record = parallel.violation
    assert record is not None
    assert record.trace, "merged counterexample must carry a trace"
    # The winning schedule replays to the same outcome under the serial
    # replayer — the counterexample is real, not a merge artifact.
    replayed = Checker(factory(), strategy=strategy, **kwargs).replay(record)
    assert replayed.outcome in (Outcome.VIOLATION, Outcome.DEADLOCK)


@pytest.mark.parametrize("workload", ["dining", "boundedbuffer"])
def test_state_coverage_matches_serial(workload):
    factory, kwargs = WORKLOADS[workload]

    def covered(workers):
        result = Checker(factory(), strategy="dfs", workers=workers,
                         collect_coverage=True,
                         stop_on_first_violation=False,
                         stop_on_first_divergence=False, **kwargs).run()
        return result.exploration.states_covered

    reference = covered(1)
    assert reference and reference > 0
    assert covered(4) == reference


def test_parallel_repro_file_replays_serially(tmp_path):
    factory, kwargs = WORKLOADS["wsq"]
    parallel = Checker(factory(), strategy="dfs", workers=4, **kwargs).run()
    record = parallel.violation
    assert record is not None

    checker = Checker(factory(), **kwargs)
    path = save_schedule(tmp_path / "wsq.repro", factory(), record,
                         policy_name=checker.policy_factory().name,
                         config=checker.config)
    replayed = load_and_replay(path, factory(), checker.policy_factory,
                               checker.config)
    assert replayed.outcome in (Outcome.VIOLATION, Outcome.DEADLOCK)
    assert replayed.schedule == record.schedule


def test_deadlock_verdict_matches_serial():
    # Deadlocks (a violation class of their own) also merge first-wins.
    from repro.workloads.dining import dining_philosophers_livelock

    serial = Checker(dining_philosophers_livelock(2), depth_bound=300).run()
    parallel = Checker(dining_philosophers_livelock(2), depth_bound=300,
                       workers=2).run()
    assert parallel.ok == serial.ok
    if serial.violation is not None:
        assert parallel.violation is not None
