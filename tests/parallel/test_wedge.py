"""Wedged-worker detection: a SIGSTOPped worker mid-shard.

Before heartbeats, a stopped worker passed every ``proc.is_alive()``
check while holding its shard forever — the merge barrier hung until an
operator noticed.  These tests pin the recovery contract: silence past
``wedge_timeout`` kills the worker, requeues the shard, emits
``worker.wedged``, and the merged totals are identical to an unfaulted
run.
"""

import pytest

from repro.chaos.faults import FaultPlan, FaultRule, fault_plan
from repro.checker import Checker
from repro.obs import CollectingSink, Observer, WorkerWedged
from repro.workloads.dining import dining_philosophers


def parallel_checker(observer=None, *, wedge_timeout=1.0):
    return Checker(dining_philosophers(2), depth_bound=60,
                   workers=2, shard_target=8, handle_signals=False,
                   heartbeat_interval=0.05, wedge_timeout=wedge_timeout,
                   observer=observer)


class TestWedgeDetection:
    def test_sigstopped_worker_is_detected_and_requeued(self):
        baseline = parallel_checker().run()
        sink = CollectingSink()
        observer = Observer(sink=sink)
        plan = FaultPlan(rules=[FaultRule(point="worker.execution",
                                          kind="worker-stall",
                                          match={"worker": 0})])
        with fault_plan(plan):
            result = parallel_checker(observer).run()

        # Detection: the wedge was observed and warned about.
        assert observer.metrics.counter("workers.wedged").value >= 1
        assert any("wedged" in w for w in result.warnings)
        wedged = [e for e in sink.events if isinstance(e, WorkerWedged)]
        assert wedged and wedged[0].worker == 0
        assert wedged[0].requeued

        # Recovery: the stalled shard was re-explored; nothing lost.
        assert result.ok == baseline.ok
        assert (result.exploration.executions
                == baseline.exploration.executions)
        assert (result.exploration.transitions
                == baseline.exploration.transitions)
        assert result.exploration.outcomes == baseline.exploration.outcomes

    def test_clock_stall_is_treated_as_a_wedge(self):
        """A worker whose heartbeat thread dies but whose work continues
        still gets recycled — liveness is judged by the clock alone."""
        baseline = parallel_checker().run()
        observer = Observer()
        plan = FaultPlan(rules=[FaultRule(point="worker.heartbeat",
                                          kind="clock-stall",
                                          match={"worker": 0})])
        with fault_plan(plan):
            result = parallel_checker(observer, wedge_timeout=0.5).run()
        # Either the worker finished its shards before the timeout (its
        # real work never stops) or it was recycled as wedged — both end
        # with full totals.
        assert (result.exploration.executions
                == baseline.exploration.executions)
        assert result.exploration.outcomes == baseline.exploration.outcomes

    def test_wedge_detection_can_be_disabled(self):
        """``wedge_timeout=None`` keeps the old semantics (no liveness
        policing) for debugger-friendly runs."""
        result = Checker(dining_philosophers(2), depth_bound=60,
                         workers=2, shard_target=4, handle_signals=False,
                         wedge_timeout=None).run()
        assert result.ok


class TestHealthyRunsUnaffected:
    def test_no_spurious_wedges_under_tight_timeout(self):
        """Healthy workers heartbeat fast enough that even an aggressive
        timeout never kills them."""
        observer = Observer()
        result = parallel_checker(observer, wedge_timeout=0.75).run()
        assert observer.metrics.counter("workers.wedged").value == 0
        assert result.ok
        assert not any("wedged" in w for w in result.warnings)
