"""Property tests of heap canonicalization (hypothesis)."""

import random

from hypothesis import given, settings, strategies as st

from repro.statespace.canonical import canonicalize

# Nested structures of hashable-ish atoms.
atoms = st.one_of(st.integers(-50, 50), st.booleans(), st.none(),
                  st.text(max_size=4))
structures = st.recursive(
    atoms,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=3), children, max_size=3),
    ),
    max_leaves=12,
)


class TestDeterminism:
    @settings(max_examples=100, deadline=None)
    @given(value=structures)
    def test_canonical_form_is_hashable_and_stable(self, value):
        first = canonicalize(value)
        second = canonicalize(value)
        assert first == second
        hash(first)

    @settings(max_examples=100, deadline=None)
    @given(value=st.dictionaries(st.integers(0, 20), st.integers(),
                                 max_size=6),
           seed=st.integers(0, 1000))
    def test_dict_insertion_order_irrelevant(self, value, seed):
        items = list(value.items())
        random.Random(seed).shuffle(items)
        shuffled = dict(items)
        assert canonicalize(value) == canonicalize(shuffled)

    @settings(max_examples=100, deadline=None)
    @given(values=st.lists(st.integers(0, 30), max_size=8, unique=True),
           seed=st.integers(0, 1000))
    def test_set_order_irrelevant(self, values, seed):
        original = set(values)
        shuffled_list = list(values)
        random.Random(seed).shuffle(shuffled_list)
        rebuilt = set()
        for item in shuffled_list:
            rebuilt.add(item)
        assert canonicalize(original) == canonicalize(rebuilt)


class TestDistinction:
    @settings(max_examples=100, deadline=None)
    @given(left=structures, right=structures)
    def test_equal_canonical_forms_only_for_similar_shapes(self, left, right):
        # Soundness direction: structurally equal values canonicalize
        # equal.  (The converse — distinct values may collide — is only
        # allowed through aliasing/opaque merging, which these structures
        # don't contain, so inequality must be preserved.)
        if left == right and type(left) is type(right):
            assert canonicalize(left) == canonicalize(right)

    @settings(max_examples=100, deadline=None)
    @given(value=st.lists(st.integers(0, 5), min_size=1, max_size=5))
    def test_objects_with_equal_attrs_collide(self, value):
        class Box:
            def __init__(self, inner):
                self.inner = inner

        assert canonicalize(Box(value)) == canonicalize(Box(list(value)))
