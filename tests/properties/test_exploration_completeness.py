"""DFS/BFS completeness against analytic ground truth (hypothesis).

For *acyclic* random programs (forward-only control flow), the number of
maximal executions can be computed exactly by a memoized path count over
the state graph.  The stateless DFS must enumerate exactly that many
executions, and its coverage must equal the reachable-state set — a
whole-pipeline correctness check of the replay engine.
"""

import random
from functools import lru_cache

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.results import Outcome
from repro.engine.strategies import (
    ExplorationLimits,
    explore_bfs,
    explore_dfs,
)
from repro.statespace.adapter import TransitionSystemProgram
from repro.statespace.stateful import reachable_states
from repro.statespace.transition_system import TransitionSystem, pc_program

SETTINGS = settings(max_examples=30, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

LIMITS = ExplorationLimits(max_executions=50_000,
                           stop_on_first_violation=False,
                           stop_on_first_divergence=False)


def acyclic_system(seed: int, n_threads: int = 2, n_pcs: int = 3,
                   domain: int = 3) -> TransitionSystem:
    """Random program whose instructions only move the pc forward."""
    rng = random.Random(seed)
    tables = {}
    for index in range(n_threads):
        rows = []
        for pc in range(n_pcs):
            effect_table = tuple(rng.randrange(domain) for _ in range(domain))
            allowed = frozenset(
                v for v in range(domain) if rng.random() < 0.7
            ) or frozenset({0})
            rows.append((
                (lambda shared, a=allowed: shared in a),
                (lambda shared, t=effect_table: t[shared]),
                rng.randrange(pc + 1, n_pcs + 1),  # strictly forward
                rng.random() < 0.3,
            ))
        tables[f"T{index}"] = tuple(rows)
    return pc_program(f"acyclic({seed})", 0, tables)


def count_maximal_executions(system: TransitionSystem) -> int:
    @lru_cache(maxsize=None)
    def paths(state) -> int:
        enabled = system.enabled_threads(state)
        if not enabled:
            return 1
        return sum(paths(system.next_state(state, tid))
                   for tid in enabled)

    return paths(system.initial)


class TestDFSCompleteness:
    @SETTINGS
    @given(seed=st.integers(0, 5_000))
    def test_execution_count_matches_path_count(self, seed):
        system = acyclic_system(seed)
        expected = count_maximal_executions(system)
        if expected > 20_000:
            return  # keep the test fast
        result = explore_dfs(TransitionSystemProgram(system),
                             nonfair_policy(), ExecutorConfig(), LIMITS)
        assert result.complete
        assert result.executions == expected

    @SETTINGS
    @given(seed=st.integers(0, 5_000))
    def test_coverage_matches_reachable_states(self, seed):
        system = acyclic_system(seed)
        if count_maximal_executions(system) > 20_000:
            return
        coverage = CoverageTracker()
        explore_dfs(TransitionSystemProgram(system), nonfair_policy(),
                    ExecutorConfig(), LIMITS, coverage=coverage)
        assert coverage.signatures() == reachable_states(system)


class TestBFSAgreement:
    @SETTINGS
    @given(seed=st.integers(0, 2_000))
    def test_bfs_and_dfs_reach_the_same_states(self, seed):
        system = acyclic_system(seed, n_threads=2, n_pcs=2)
        if count_maximal_executions(system) > 2_000:
            return
        dfs_cov, bfs_cov = CoverageTracker(), CoverageTracker()
        dfs = explore_dfs(TransitionSystemProgram(system),
                          nonfair_policy(), ExecutorConfig(), LIMITS,
                          coverage=dfs_cov)
        bfs = explore_bfs(TransitionSystemProgram(system),
                          nonfair_policy(), ExecutorConfig(), LIMITS,
                          coverage=bfs_cov)
        assert dfs.complete and bfs.complete
        assert dfs_cov.signatures() == bfs_cov.signatures()
        # BFS replays one execution per tree *node* (every guide prefix
        # runs to completion), so it does at least as much work as DFS's
        # one-per-leaf enumeration.
        assert bfs.executions >= dfs.executions
