"""Property-based validation of the paper's theorems (hypothesis).

Random finite-state programs are generated from seeds
(:mod:`repro.statespace.random_programs`) and the fair scheduler's
guarantees are checked against them:

* Theorem 1 — every infinite execution generated satisfies ``GS ⇒ SF``:
  on long executions produced by the fair scheduler, if every scheduled
  thread keeps yielding in the suffix, no enabled thread is starved.
* Theorem 3 — the priority relation stays acyclic, so ``T = ∅ ⇔ ES = ∅``
  (no false deadlocks).
* Theorem 5 — the fair search visits every reachable state of yield
  count zero.
* Theorem 6 — a reachable (yield-count-zero) fair cycle of yield count
  ≤ 1 forces the fair search to generate a divergent execution.
"""

import random as random_module

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import FairPolicy, fair_policy
from repro.engine.classify import classify_divergence
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import (
    ExecutorConfig,
    GuidedChooser,
    RandomChooser,
    run_execution,
)
from repro.engine.results import DivergenceKind, Outcome
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.statespace.adapter import TransitionSystemProgram
from repro.statespace.cycles import (
    build_state_graph,
    cycle_yield_count,
    enumerate_cycles,
    is_fair_cycle,
)
from repro.statespace.random_programs import (
    random_good_samaritan_system,
    random_system,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def yield_free_reachable_states(system):
    """States reachable via executions of yield count zero: BFS using
    only non-yielding transitions."""
    from collections import deque

    seen = {system.initial}
    frontier = deque([system.initial])
    while frontier:
        state = frontier.popleft()
        for tid in system.enabled_threads(state):
            if system.is_yielding(state, tid):
                continue
            successor = system.next_state(state, tid)
            if successor not in seen:
                seen.add(successor)
                frontier.append(successor)
    return seen


class TestTheorem1:
    @SETTINGS
    @given(seed=st.integers(0, 10_000), walk=st.integers(0, 100))
    def test_gs_implies_fairness_on_long_executions(self, seed, walk):
        """Random walks under the fair policy on good-samaritan programs:
        if the walk diverges, its suffix must be fair (never classified
        UNFAIR)."""
        system = random_good_samaritan_system(seed, n_threads=2, n_pcs=3)
        program = TransitionSystemProgram(system)
        record = run_execution(
            program, FairPolicy(),
            RandomChooser(random_module.Random(walk)),
            ExecutorConfig(depth_bound=400, on_depth_exceeded="divergence"),
        )
        if record.outcome is Outcome.DIVERGENCE:
            assert record.divergence.kind is not DivergenceKind.UNFAIR, (
                f"fair scheduler starved a thread on {system.name}: "
                f"{record.divergence}"
            )

    @SETTINGS
    @given(seed=st.integers(0, 10_000), walk=st.integers(0, 50))
    def test_no_starvation_window_on_gs_programs(self, seed, walk):
        """Directly check SF on the suffix: any thread enabled throughout
        the final window must be scheduled in it."""
        system = random_good_samaritan_system(seed, n_threads=3, n_pcs=2)
        program = TransitionSystemProgram(system)
        record = run_execution(
            program, FairPolicy(),
            RandomChooser(random_module.Random(walk)),
            ExecutorConfig(depth_bound=500, on_depth_exceeded="divergence",
                           trace_window=128),
        )
        if record.outcome is not Outcome.DIVERGENCE:
            return
        suffix = list(record.trace)[-96:]
        scheduled = {step.tid for step in suffix}
        always_enabled = set(suffix[0].enabled_before)
        for step in suffix:
            always_enabled &= step.enabled_before
        assert always_enabled <= scheduled, (
            f"threads {always_enabled - scheduled} continuously enabled "
            f"but starved by the fair scheduler"
        )


class TestTheorem3:
    @SETTINGS
    @given(seed=st.integers(0, 10_000), walk=st.integers(0, 50))
    def test_priority_relation_stays_acyclic(self, seed, walk):
        system = random_system(seed, n_threads=3, n_pcs=3, yield_prob=0.5)
        program = TransitionSystemProgram(system)
        # check_acyclic raises inside the policy if Theorem 3 breaks.
        record = run_execution(
            program, FairPolicy(check_acyclic=True),
            RandomChooser(random_module.Random(walk)),
            ExecutorConfig(depth_bound=300, on_depth_exceeded="prune"),
        )
        assert record.outcome in (Outcome.TERMINATED, Outcome.DEADLOCK,
                                  Outcome.DEPTH_PRUNED)

    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_no_false_deadlocks(self, seed):
        """T = ∅ iff ES = ∅: the fair DFS reports termination at exactly
        the states where the nonfair search would."""
        system = random_system(seed, n_threads=2, n_pcs=2, yield_prob=0.6)
        program = TransitionSystemProgram(system)
        result = explore_dfs(
            program, fair_policy(),
            ExecutorConfig(depth_bound=200, on_depth_exceeded="prune"),
            ExplorationLimits(max_executions=500,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=False),
        )
        # The executor asserts non-emptiness of T internally; surviving
        # the search without AssertionError is the property.
        assert result.executions >= 1


class TestTheorem5:
    @SETTINGS
    @given(seed=st.integers(0, 2_000))
    def test_fair_dfs_covers_yield_free_states(self, seed):
        system = random_system(seed, n_threads=2, n_pcs=2, domain=2,
                               yield_prob=0.4)
        program = TransitionSystemProgram(system)
        coverage = CoverageTracker()
        result = explore_dfs(
            program, fair_policy(),
            ExecutorConfig(depth_bound=200),
            ExplorationLimits(max_executions=3000,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=True),
            coverage=coverage,
        )
        if result.found_divergence or result.limit_hit:
            # Theorem 5's other branch: the algorithm generated an
            # infinite execution (or we ran out of budget) — no coverage
            # obligation.
            return
        expected = yield_free_reachable_states(system)
        missing = expected - coverage.signatures()
        assert not missing, (
            f"yield-count-zero states missed by the fair search on "
            f"{system.name}: {missing}"
        )


class TestTheorem6:
    @SETTINGS
    @given(seed=st.integers(0, 2_000))
    def test_reachable_fair_cycle_forces_divergence(self, seed):
        system = random_system(seed, n_threads=2, n_pcs=2, domain=2,
                               yield_prob=0.4)
        graph = build_state_graph(system, max_states=5_000)
        yield_free = yield_free_reachable_states(system)
        qualifying = [
            cycle
            for cycle in enumerate_cycles(graph, limit=500)
            if cycle[0][0] in yield_free
            and is_fair_cycle(system, cycle)
            and cycle_yield_count(system, cycle) <= 1
        ]
        if not qualifying:
            return  # precondition not met; nothing to check
        program = TransitionSystemProgram(system)
        result = explore_dfs(
            program, fair_policy(),
            ExecutorConfig(depth_bound=300),
            ExplorationLimits(max_executions=20_000,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=True),
        )
        assert result.found_divergence or result.limit_hit, (
            f"{system.name} has a reachable fair cycle of yield count ≤ 1 "
            f"but the fair search terminated without divergence"
        )


class TestReplayDeterminism:
    @SETTINGS
    @given(seed=st.integers(0, 10_000), walk=st.integers(0, 50))
    def test_random_walk_replays_identically(self, seed, walk):
        system = random_system(seed, n_threads=2, n_pcs=3)
        program = TransitionSystemProgram(system)
        config = ExecutorConfig(depth_bound=150, on_depth_exceeded="prune")
        original = run_execution(
            program, FairPolicy(),
            RandomChooser(random_module.Random(walk)), config,
        )
        replayed = run_execution(
            program, FairPolicy(), GuidedChooser(original.schedule), config,
        )
        assert replayed.outcome == original.outcome
        assert replayed.schedule == original.schedule
        assert [s.operation for s in replayed.trace] == \
            [s.operation for s in original.trace]
