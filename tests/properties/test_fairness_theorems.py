"""Fairness theorems, property-based over a small op vocabulary.

Unlike :mod:`tests.properties.test_theorems` (which drives seed-indexed
random transition systems), this suite draws *structured* VM programs —
lists of operations over a tiny vocabulary (store / load / add /
nested-lock sections / yielding spin-waits) — so a failing example
shrinks to a minimal counterexample program instead of an opaque seed.

Checked against the fair scheduler of Algorithm 1:

* Theorem 3 — the priority relation stays acyclic, hence ``T = ∅ ⇔
  ES = ∅``: every deadlock the fair checker reports is a real deadlock
  of the unconstrained program (replayable under the nonfair policy),
  never an artifact of fair deprioritisation.
* Theorem 4 — an unfair cycle is unrolled at most twice: on programs
  whose spin loops are eventually released, the fair search is finite
  and no generated execution lets the spinner burn more than two
  yielding iterations while another thread could run.

The suites together draw well over 200 programs per run (see
``max_examples`` below: 80 + 80 + 40 + 20 = 220).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.executor import ExecutorConfig
from repro.engine.replay import replay_schedule
from repro.engine.results import Outcome
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.runtime.api import yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.sync.mutex import Mutex

N_VARS = 2
N_MUTEXES = 2

#: Straight-line ops: ("store", var, value) / ("load", var) / ("add", var).
flat_op = st.one_of(
    st.tuples(st.just("store"), st.integers(0, N_VARS - 1),
              st.integers(0, 1)),
    st.tuples(st.just("load"), st.integers(0, N_VARS - 1)),
    st.tuples(st.just("add"), st.integers(0, N_VARS - 1)),
)

#: A nested-lock section: acquire m[i], acquire m[j], one flat op,
#: release m[j], release m[i].  Two threads drawing (0, 1) and (1, 0)
#: are the classic ABBA deadlock; drawing equal indices is re-entrant
#: ordering (never deadlocks).  Lock use is balanced by construction.
lock_op = st.tuples(st.just("lock2"), st.integers(0, N_MUTEXES - 1),
                    st.integers(0, N_MUTEXES - 1), flat_op)

#: A good-samaritan spin-wait: loop { load var; break if == value;
#: yield }.  The only op that yields the processor.
await_op = st.tuples(st.just("await"), st.integers(0, N_VARS - 1),
                     st.integers(0, 1))

thread_ops = st.lists(st.one_of(flat_op, lock_op), min_size=1, max_size=3)

#: Scratch ops confined to x1, so a Theorem-4 worker never touches the
#: x0 release counter its spinner is waiting on (an extra add would
#: overshoot the awaited value and the spin would *correctly* diverge).
scratch_op = st.one_of(
    st.tuples(st.just("store"), st.just(1), st.integers(0, 1)),
    st.tuples(st.just("load"), st.just(1)),
    st.tuples(st.just("add"), st.just(1)),
)

#: Theorem-4 worker families, sized so the full fair tree stays under
#: ~10k executions (stateless DFS path counts grow fast with a spinner
#: in the mix): one worker with up to two scratch ops, or two workers
#: sharing at most one.
worker_family = st.one_of(
    st.lists(scratch_op, min_size=0, max_size=2).map(lambda ops: [ops]),
    st.lists(scratch_op, min_size=0, max_size=1).map(
        lambda ops: [ops, []]),
)


def build_program(threads, *, waiter=None):
    """A VMProgram running each drawn op list in its own thread.

    ``waiter``, when given, is ``(var, value)``: an extra thread that
    spin-waits (with yields) until ``vars[var] == value``.
    """

    def setup(env):
        shared = [SharedVar(0, name=f"x{i}") for i in range(N_VARS)]
        mutexes = [Mutex(name=f"m{i}") for i in range(N_MUTEXES)]

        def run_flat(op):
            if op[0] == "store":
                yield from shared[op[1]].set(op[2])
            elif op[0] == "load":
                yield from shared[op[1]].get()
            else:  # add
                yield from shared[op[1]].fetch_add(1)

        def runner(ops):
            def body():
                for op in ops:
                    if op[0] == "lock2":
                        _, i, j, inner = op
                        yield from mutexes[i].acquire()
                        yield from mutexes[j].acquire()
                        yield from run_flat(inner)
                        yield from mutexes[j].release()
                        yield from mutexes[i].release()
                    else:
                        yield from run_flat(op)
            return body

        for index, ops in enumerate(threads):
            env.spawn(runner(ops), name=f"w{index}")

        if waiter is not None:
            var, value = waiter

            def spin():
                while True:
                    seen = yield from shared[var].get()
                    if seen == value:
                        break
                    yield from yield_now()

            env.spawn(spin, name="spin")

        env.set_state_fn(lambda: (
            tuple(v.peek() for v in shared),
            tuple(m.owner_name() for m in mutexes),
        ))

    return VMProgram(setup, name="vocab")


CONFIG = ExecutorConfig(depth_bound=200, on_depth_exceeded="divergence")
LIMITS = ExplorationLimits(max_executions=400,
                           stop_on_first_violation=False,
                           stop_on_first_divergence=True)


class TestTheorem3:
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(threads=st.lists(thread_ops, min_size=1, max_size=3))
    def test_priority_relation_stays_acyclic(self, threads):
        """``check_acyclic`` asserts Theorem 3 inside the policy on
        every step; surviving a bounded DFS is the property."""
        program = build_program(threads)
        result = explore_dfs(
            program, fair_policy(check_acyclic=True), CONFIG, LIMITS,
        )
        assert result.executions >= 1

    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(threads=st.lists(
        st.lists(lock_op, min_size=1, max_size=2), min_size=2, max_size=3))
    def test_reported_deadlocks_are_real(self, threads):
        """T = ∅ ⇒ ES = ∅: a deadlock reported by the *fair* search must
        replay to a deadlock under the *nonfair* policy — it exists in
        the unconstrained program, it is not fair deprioritisation
        masquerading as a stuck state."""
        program = build_program(threads)
        records = []
        explore_dfs(program, fair_policy(), CONFIG, LIMITS,
                    listener=records.append)
        for record in records:
            if record.outcome is not Outcome.DEADLOCK:
                continue
            replayed = replay_schedule(
                build_program(threads), record.schedule,
                nonfair_policy(), CONFIG,
            )
            assert replayed.outcome is Outcome.DEADLOCK, (
                f"fair search reported a deadlock the nonfair replay "
                f"does not reach (got {replayed.outcome}); schedule="
                f"{record.schedule}"
            )


def spinner_run_lengths(record, spin_name="spin"):
    """Yielding iterations the spinner burns per scheduling window.

    A window is a maximal run of consecutive spinner steps taken while
    at least one other thread was enabled; each spin-loop iteration
    contributes exactly one yielding step (the ``yield_now``).
    """
    runs = []
    current = 0
    for step in record.trace:
        if step.thread_name == spin_name and len(step.enabled_before) >= 2:
            if step.yielded:
                current += 1
        else:
            if current:
                runs.append(current)
            current = 0
    if current:
        runs.append(current)
    return runs


class TestTheorem4:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(workers=worker_family)
    def test_released_spin_loops_terminate_fairly(self, workers):
        """Workers each bump a counter; the spinner waits for the total.
        Every maximal execution terminates, so by Theorem 4 the *fair*
        search is finite and divergence-free."""
        threads = [ops + [("add", 0)] for ops in workers]
        program = build_program(threads, waiter=(0, len(threads)))
        result = explore_dfs(
            program, fair_policy(), CONFIG,
            ExplorationLimits(max_executions=12000,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=True),
        )
        assert not result.found_divergence, (
            "fair search diverged on a terminating spin program"
        )
        assert result.complete
        assert result.outcomes.get(Outcome.TERMINATED, 0) == \
            result.executions

    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(workers=worker_family)
    def test_unfair_cycle_unrolled_at_most_twice(self, workers):
        """The quantitative content of Theorem 4: while another thread
        could run, the fair scheduler lets the spin loop go round at
        most twice before the priority edge forces a context switch."""
        threads = [ops + [("add", 0)] for ops in workers]
        program = build_program(threads, waiter=(0, len(threads)))
        records = []
        result = explore_dfs(
            program, fair_policy(), CONFIG,
            ExplorationLimits(max_executions=12000,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=True),
            listener=records.append,
        )
        assert result.complete
        for record in records:
            for run in spinner_run_lengths(record):
                assert run <= 2, (
                    f"spin loop unrolled {run} times in one window: "
                    f"{[ (s.thread_name, s.operation) for s in record.trace ]}"
                )
