"""Theorem 4: the fair scheduler unrolls an unfair cycle at most twice.

We build the canonical unfair-cycle program (the Figure 3 spin loop) and
count, across *every* execution the fair DFS generates, how many times the
cycle is traversed consecutively.  Theorem 4 says the execution that
unrolls the cycle fully twice-and-then-again is never generated.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import fair_policy
from repro.engine.executor import ExecutorConfig
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.statespace.adapter import TransitionSystemProgram
from repro.statespace.random_programs import random_good_samaritan_system
from repro.statespace.transition_system import figure3_system


def max_state_revisits(record):
    """Max number of times any single state signature occurs in a trace.

    Traversing a cycle of length L k times revisits its states k+1 times;
    bounding revisits bounds unrollings.
    """
    counts = {}
    for step in record.trace:
        # operation strings embed the post-state for TS programs; count
        # (tid, operation) occurrences as a state-revisit proxy.
        key = step.operation
        counts[key] = counts.get(key, 0) + 1
    return max(counts.values(), default=0)


class TestFigure3Unrolling:
    def test_spin_cycle_not_unrolled_beyond_twice(self):
        program = TransitionSystemProgram(figure3_system())
        seen_traces = []
        result = explore_dfs(
            program, fair_policy(),
            ExecutorConfig(depth_bound=100),
            ExplorationLimits(stop_on_first_violation=False,
                              stop_on_first_divergence=False),
            listener=seen_traces.append,
        )
        assert result.complete
        for record in seen_traces:
            # The spin transition u@(a,d) appears at most 3 times in any
            # generated execution: the first window (unconstrained) plus
            # at most two unrollings before the priority edge forces t.
            assert max_state_revisits(record) <= 3, (
                [s.operation for s in record.trace]
            )

    def test_fair_search_is_finite_on_figure3(self):
        program = TransitionSystemProgram(figure3_system())
        result = explore_dfs(
            program, fair_policy(), ExecutorConfig(depth_bound=100),
            ExplorationLimits(stop_on_first_violation=False,
                              stop_on_first_divergence=False),
        )
        assert result.complete
        assert not result.found_divergence


class TestBoundedUnrollingProperty:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(0, 5_000))
    def test_executions_of_gs_programs_have_bounded_revisits(self, seed):
        """On good-samaritan programs whose fair search terminates, no
        generated execution revisits any transition unboundedly — the
        quantitative content of Theorem 4."""
        system = random_good_samaritan_system(seed, n_threads=2, n_pcs=2)
        program = TransitionSystemProgram(system)
        records = []
        result = explore_dfs(
            program, fair_policy(),
            ExecutorConfig(depth_bound=250),
            ExplorationLimits(max_executions=2000,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=True),
            listener=records.append,
        )
        if result.found_divergence or result.limit_hit:
            return  # program has fair cycles (or too big): not this test
        state_count = 4 * 3 * 3  # pcs x pcs x domain upper bound
        for record in records:
            # Without fair cycles, executions cannot dwarf the state
            # space: each unfair cycle contributes at most ~2 unrollings.
            assert record.steps <= 6 * state_count
