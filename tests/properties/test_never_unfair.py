"""Corollary of Theorem 1: the fair scheduler produces no unfair schedules,
so no divergence it reports may be *classified* as UNFAIR.

The classifier blames the scheduler (kind UNFAIR) when an enabled thread
was starved in the analyzed suffix.  Under the fair policy of Algorithm 1
that situation is impossible — every divergence must come out LIVELOCK,
GOOD_SAMARITAN_VIOLATION or TEMPORAL.  This suite checks the corollary on
the paper's divergent workloads and on hypothesis-drawn spin programs
whose finite threads terminate mid-execution (the case that used to trip
the classifier before starvation was gated on end-of-window enabledness).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.checker import Checker
from repro.core.policies import fair_policy
from repro.engine.executor import ExecutorConfig
from repro.engine.results import DivergenceKind
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.runtime.api import yield_now
from repro.runtime.program import VMProgram
from repro.sync.atomics import SharedVar
from repro.workloads.dining import dining_philosophers_livelock
from repro.workloads.promise import promise_program
from repro.workloads.spinloop import spinloop
from repro.workloads.workerpool import worker_pool


def assert_never_unfair(result):
    for record in result.divergences:
        assert record.divergence is not None
        assert record.divergence.kind is not DivergenceKind.UNFAIR, (
            f"fair search produced an UNFAIR-classified divergence: "
            f"{record.divergence.detail}"
        )


class TestPaperWorkloads:
    def check(self, program, **kwargs):
        result = Checker(
            program, fairness=True, stop_on_first_divergence=False,
            stop_on_first_violation=False, **kwargs,
        ).run()
        assert result.exploration.divergences, "expected divergences"
        assert_never_unfair(result.exploration)

    def test_spinloop_terminates_fairly(self):
        # The correct spinloop has no divergences at all under the fair
        # scheduler — the strongest form of the corollary.
        result = Checker(spinloop(), fairness=True, depth_bound=150,
                         stop_on_first_divergence=False).run()
        assert result.exploration.complete
        assert not result.exploration.divergences

    def test_worker_pool_spin(self):
        self.check(worker_pool(tasks=1, workers=1), depth_bound=150,
                   max_executions=60)

    def test_promise_stale_read(self):
        self.check(promise_program(2, stale_read_bug=True),
                   depth_bound=150, max_executions=60)

    def test_dining_livelock(self):
        self.check(dining_philosophers_livelock(2), depth_bound=150,
                   max_executions=60)


#: Each drawn thread: ("spin", yields?) loops forever, ("finite", n) does
#: n shared increments and terminates (leaving the race mid-execution).
spin_thread = st.tuples(st.just("spin"), st.booleans())
finite_thread = st.tuples(st.just("finite"), st.integers(1, 3))


def build_spin_program(threads):
    def setup(env):
        cell = SharedVar(0, name="x")

        def spinner(yields):
            def body():
                while True:
                    yield from cell.get()
                    if yields:
                        yield from yield_now()
            return body

        def worker(count):
            def body():
                for _ in range(count):
                    yield from cell.fetch_add(1)
            return body

        for index, (kind, arg) in enumerate(threads):
            if kind == "spin":
                env.spawn(spinner(arg), name=f"spin{index}")
            else:
                env.spawn(worker(arg), name=f"fin{index}")

        env.set_state_fn(lambda: cell.peek())

    return VMProgram(setup, name="spin-mix")


class TestDrawnSpinPrograms:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(threads=st.lists(
        st.one_of(spin_thread, finite_thread), min_size=1, max_size=3,
    ).filter(lambda ts: any(t[0] == "spin" for t in ts)))
    def test_fair_divergences_never_unfair(self, threads):
        program = build_spin_program(threads)
        result = explore_dfs(
            program, fair_policy(),
            ExecutorConfig(depth_bound=100,
                           on_depth_exceeded="divergence"),
            ExplorationLimits(max_executions=80,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=False),
        )
        assert result.divergences, "a spinner must diverge"
        assert_never_unfair(result)
