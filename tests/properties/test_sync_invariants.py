"""Mutual-exclusion invariants over randomized lock programs (hypothesis).

Random programs of threads acquiring/releasing random mutexes and
semaphores are explored exhaustively; mutual exclusion must hold in
*every* interleaving.  Deadlocks are possible (random nested acquisition
orders) and fine — the property under test is exclusion, not progress.
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import nonfair_policy
from repro.engine.monitors import invariant
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.runtime.api import pause
from repro.runtime.program import VMProgram
from repro.sync.mutex import Mutex
from repro.sync.semaphore import Semaphore

SETTINGS = settings(max_examples=20, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

LIMITS = ExplorationLimits(max_executions=4000,
                           stop_on_first_violation=False,
                           stop_on_first_divergence=False)


def random_lock_program(seed: int, *, n_threads=2, n_locks=2,
                        ops_per_thread=2) -> VMProgram:
    rng = random.Random(seed)
    plans = [
        [rng.randrange(n_locks) for _ in range(ops_per_thread)]
        for _ in range(n_threads)
    ]

    def setup(env):
        locks = [Mutex(name=f"m{i}") for i in range(n_locks)]
        occupancy = [0] * n_locks

        def worker(plan):
            for lock_index in plan:
                yield from locks[lock_index].acquire()
                occupancy[lock_index] += 1
                yield from pause("critical-section")
                occupancy[lock_index] -= 1
                yield from locks[lock_index].release()

        for i, plan in enumerate(plans):
            env.spawn(worker, plan, name=f"w{i}")
        env.add_monitor(invariant(
            lambda: all(count <= 1 for count in occupancy),
            "two threads inside the same critical section",
        ))

    return VMProgram(setup, name=f"locks({seed})")


def random_semaphore_program(seed: int, *, permits=2, n_threads=3) -> VMProgram:
    rng = random.Random(seed)

    def setup(env):
        gate = Semaphore(permits, name="gate")
        inside = [0]

        def worker():
            yield from gate.wait()
            inside[0] += 1
            yield from pause("inside")
            inside[0] -= 1
            yield from gate.release()

        for i in range(n_threads):
            env.spawn(worker, name=f"w{i}")
        env.add_monitor(invariant(
            lambda: inside[0] <= permits,
            "semaphore admitted too many threads",
        ))

    return VMProgram(setup, name=f"sem({seed})")


class TestMutualExclusion:
    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_mutexes_exclude_in_every_interleaving(self, seed):
        result = explore_dfs(random_lock_program(seed), nonfair_policy(),
                             limits=LIMITS)
        # Deadlocks are legitimate outcomes of random nesting; actual
        # exclusion violations are not.
        assert not result.violations, (
            result.violations[0].violation if result.violations else None
        )

    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_semaphore_bounds_occupancy(self, seed):
        result = explore_dfs(random_semaphore_program(seed),
                             nonfair_policy(), limits=LIMITS)
        assert not result.violations

    @SETTINGS
    @given(seed=st.integers(0, 2_000))
    def test_fair_policy_preserves_exclusion(self, seed):
        from repro.core.policies import fair_policy
        from repro.engine.executor import ExecutorConfig

        result = explore_dfs(random_lock_program(seed), fair_policy(),
                             ExecutorConfig(depth_bound=200), LIMITS)
        assert not result.violations
