"""Source-DPOR soundness over random programs (hypothesis).

Three claims, each over seeds drawn by hypothesis:

* on random *partitioned* systems (honest per-instruction footprints,
  forward-only control flow) DPOR reaches exactly the terminal states,
  deadlock states and violations of the stateful ground truth, with at
  most as many executions as unreduced DFS;
* on arbitrary random systems (no declared footprints — everything
  conservatively dependent) DPOR degrades gracefully: identical verdict
  inventory to DFS, never more executions;
* under the *fair* scheduler on good-samaritan spin-loop programs, DPOR
  and fair DFS agree on divergence reachability — the fairness-pruned
  blocking of a low-priority thread is never mistaken for a race
  partner, and reversals deferred by the fair policy are recovered at
  later nodes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.executor import ExecutorConfig
from repro.engine.results import Outcome
from repro.engine.strategies import (
    DporStrategy,
    ExplorationLimits,
    explore_dfs,
)
from repro.statespace import (
    TransitionSystemProgram,
    random_good_samaritan_system,
    random_partitioned_system,
    random_system,
)

from tests.helpers import dfs_coverage, dpor_coverage, ground_truth

SETTINGS = settings(max_examples=25, deadline=None,
                    suppress_health_check=[HealthCheck.too_slow])

LIMITS = ExplorationLimits(max_executions=50_000,
                           stop_on_first_violation=False,
                           stop_on_first_divergence=False)


class TestPartitionedSystems:
    @SETTINGS
    @given(seed=st.integers(0, 5_000))
    def test_dpor_matches_ground_truth(self, seed):
        program = TransitionSystemProgram(random_partitioned_system(seed))
        truth = ground_truth(program)
        dpor = dpor_coverage(program, depth_bound=200)
        assert dpor.complete and truth.complete
        assert dpor.terminal_states == truth.terminal_states
        assert dpor.deadlock_states == truth.deadlock_states
        assert dpor.violation_messages == truth.violation_messages
        assert dpor.states <= truth.states

    @SETTINGS
    @given(seed=st.integers(0, 5_000))
    def test_dpor_never_exceeds_dfs(self, seed):
        program = TransitionSystemProgram(random_partitioned_system(seed))
        dpor = dpor_coverage(program, depth_bound=200)
        dfs = dfs_coverage(program, depth_bound=200)
        assert dpor.executions <= dfs.executions
        assert dpor.terminal_states == dfs.terminal_states


class TestUndeclaredFootprints:
    @SETTINGS
    @given(seed=st.integers(0, 3_000))
    def test_conservative_dependence_stays_sound(self, seed):
        # random_system declares no footprints: every pair is dependent,
        # so the reduction cannot fire — but the machinery (races on
        # every adjacent pair, wakeup insertion, sleep sets) must still
        # terminate with the same verdicts as DFS.  Backward jumps make
        # executions unbounded; restrict to seeds where DFS exhausts the
        # bounded tree without truncation, since bounded DPOR only
        # guarantees exhaustiveness when no execution hits the bound.
        program = TransitionSystemProgram(random_system(seed))
        dfs = dfs_coverage(program, depth_bound=60, max_executions=4_000)
        if not dfs.complete:
            return
        dfs_raw = explore_dfs(
            TransitionSystemProgram(random_system(seed)), nonfair_policy(),
            ExecutorConfig(depth_bound=60, on_depth_exceeded="prune"),
            LIMITS)
        if dfs_raw.nonterminating_executions:
            return
        dpor = dpor_coverage(program, depth_bound=60)
        assert dpor.complete
        assert dpor.terminal_states == dfs.terminal_states
        assert dpor.deadlock_states == dfs.deadlock_states
        assert dpor.violation_messages == dfs.violation_messages
        assert dpor.executions <= dfs.executions


class TestFairSpinLoops:
    @SETTINGS
    @given(seed=st.integers(0, 2_000))
    def test_divergence_reachability_matches_fair_dfs(self, seed):
        # Good-samaritan systems loop forever through yielding
        # instructions; under the fair scheduler some interleavings
        # terminate and the rest classify as divergences at the bound.
        # DPOR composed with the fair policy must find a divergence iff
        # fair DFS does, and must reach every terminating interleaving's
        # verdict (same TERMINATED presence).
        system = random_good_samaritan_system(seed, n_threads=2, n_pcs=2)
        config = ExecutorConfig(depth_bound=40,
                                on_depth_exceeded="divergence")
        dfs = explore_dfs(TransitionSystemProgram(system), fair_policy(),
                          config, ExplorationLimits(
                              max_executions=3_000,
                              stop_on_first_violation=False,
                              stop_on_first_divergence=False))
        if dfs.limit_hit:
            return
        dpor = DporStrategy(
            TransitionSystemProgram(system), fair_policy(),
            limits=ExplorationLimits(max_executions=3_000,
                                     stop_on_first_violation=False,
                                     stop_on_first_divergence=False),
            config=config).explore()
        if dpor.limit_hit:
            return
        assert dpor.complete == dfs.complete
        assert ((dpor.outcomes[Outcome.DIVERGENCE] > 0)
                == (dfs.outcomes[Outcome.DIVERGENCE] > 0))
        assert ((dpor.outcomes[Outcome.TERMINATED] > 0)
                == (dfs.outcomes[Outcome.TERMINATED] > 0))
        assert dpor.executions <= dfs.executions
