"""Atomic cell / shared variable semantics."""

from repro.runtime.vm import VirtualMachine
from repro.sync.atomics import AtomicCell, SharedVar


def run_body(body):
    vm = VirtualMachine()
    task = vm.spawn_task(body, name="t")
    while vm.enabled_threads():
        vm.step(task.tid)
    return task


class TestOperations:
    def test_load_store(self):
        cell = AtomicCell(0)
        seen = []

        def body():
            seen.append((yield from cell.load()))
            yield from cell.store(7)
            seen.append((yield from cell.load()))

        run_body(body)
        assert seen == [0, 7]

    def test_cas_success_and_failure(self):
        cell = AtomicCell(5)
        outcomes = []

        def body():
            outcomes.append((yield from cell.compare_and_swap(5, 6)))
            outcomes.append((yield from cell.compare_and_swap(5, 7)))

        run_body(body)
        assert outcomes == [True, False]
        assert cell.peek() == 6

    def test_fetch_add_returns_previous(self):
        cell = AtomicCell(10)
        old = []

        def body():
            old.append((yield from cell.fetch_add(3)))
            old.append((yield from cell.fetch_add(-1)))

        run_body(body)
        assert old == [10, 13]
        assert cell.peek() == 12

    def test_exchange(self):
        cell = AtomicCell("a")
        old = []

        def body():
            old.append((yield from cell.exchange("b")))

        run_body(body)
        assert old == ["a"]
        assert cell.peek() == "b"

    def test_sharedvar_get_set(self):
        var = SharedVar(1)
        seen = []

        def body():
            seen.append((yield from var.get()))
            yield from var.set(2)
            seen.append((yield from var.get()))

        run_body(body)
        assert seen == [1, 2]


class TestSchedulingGranularity:
    def test_each_access_is_one_transition(self):
        """Read-modify-write as separate load/store ops loses updates —
        the checker must be able to interleave between them."""
        vm = VirtualMachine()
        counter = SharedVar(0)

        def incr():
            value = yield from counter.get()
            yield from counter.set(value + 1)

        a = vm.spawn_task(incr, name="a")
        b = vm.spawn_task(incr, name="b")
        # Interleave: a reads 0, b reads 0, both write 1.
        vm.step(a.tid)  # start
        vm.step(b.tid)  # start
        vm.step(a.tid)  # a: get -> 0
        vm.step(b.tid)  # b: get -> 0
        vm.step(a.tid)  # a: set 1
        vm.step(b.tid)  # b: set 1 (lost update)
        assert counter.peek() == 1

    def test_fetch_add_is_atomic(self):
        vm = VirtualMachine()
        counter = AtomicCell(0)

        def incr():
            yield from counter.fetch_add(1)

        a = vm.spawn_task(incr, name="a")
        b = vm.spawn_task(incr, name="b")
        vm.step(a.tid)
        vm.step(b.tid)
        vm.step(a.tid)
        vm.step(b.tid)
        assert counter.peek() == 2


class TestNonScheduling:
    def test_peek_poke(self):
        cell = AtomicCell(1, name="c")
        cell.poke(9)
        assert cell.peek() == 9
        assert cell.state_signature() == ("cell", "c", 9)

    def test_ops_never_yield_or_block(self):
        vm = VirtualMachine()
        cell = AtomicCell(0)

        def body():
            yield from cell.load()
            yield from cell.store(1)
            yield from cell.compare_and_swap(1, 2)

        task = vm.spawn_task(body)
        vm.step(task.tid)
        while not task.done:
            assert vm.is_enabled(task.tid)
            assert not vm.is_yielding(task.tid)
            vm.step(task.tid)
