"""Channel semantics: bounded FIFO, closing, timeouts."""

import pytest

from repro.runtime.errors import SyncUsageError
from repro.runtime.vm import VirtualMachine
from repro.sync.channel import Channel


def started(vm, *bodies):
    tasks = [vm.spawn_task(body, name=f"t{i}") for i, body in enumerate(bodies)]
    for task in tasks:
        vm.step(task.tid)
    return tasks


class TestFifo:
    def test_order_preserved(self):
        vm = VirtualMachine()
        chan = Channel()
        received = []

        def producer():
            for i in range(3):
                yield from chan.send(i)

        def consumer():
            for _ in range(3):
                ok, item = yield from chan.recv()
                received.append((ok, item))

        p, c = started(vm, producer, consumer)
        for _ in range(3):
            vm.step(p.tid)
        for _ in range(3):
            vm.step(c.tid)
        assert received == [(True, 0), (True, 1), (True, 2)]

    def test_recv_blocks_on_empty(self):
        vm = VirtualMachine()
        chan = Channel()

        def consumer():
            yield from chan.recv()

        (c,) = started(vm, consumer)
        assert c.tid not in vm.enabled_threads()

    def test_bounded_send_blocks_when_full(self):
        vm = VirtualMachine()
        chan = Channel(capacity=1)

        def producer():
            yield from chan.send("a")
            yield from chan.send("b")

        (p,) = started(vm, producer)
        vm.step(p.tid)
        assert chan.size() == 1
        assert p.tid not in vm.enabled_threads()

    def test_recv_unblocks_full_sender(self):
        vm = VirtualMachine()
        chan = Channel(capacity=1)

        def producer():
            yield from chan.send("a")
            yield from chan.send("b")

        def consumer():
            yield from chan.recv()

        p, c = started(vm, producer, consumer)
        vm.step(p.tid)
        assert p.tid not in vm.enabled_threads()
        vm.step(c.tid)
        assert p.tid in vm.enabled_threads()


class TestClose:
    def test_recv_on_closed_drained_returns_eof(self):
        vm = VirtualMachine()
        chan = Channel()
        results = []

        def body():
            yield from chan.send(1)
            yield from chan.close()
            results.append((yield from chan.recv()))
            results.append((yield from chan.recv()))

        (t,) = started(vm, body)
        while not t.done:
            vm.step(t.tid)
        assert results == [(True, 1), (False, None)]

    def test_send_on_closed_is_violation(self):
        vm = VirtualMachine()
        chan = Channel()

        def body():
            yield from chan.close()
            yield from chan.send(1)

        (t,) = started(vm, body)
        vm.step(t.tid)
        with pytest.raises(SyncUsageError):
            vm.step(t.tid)

    def test_close_wakes_blocked_receiver(self):
        vm = VirtualMachine()
        chan = Channel()

        def consumer():
            yield from chan.recv()

        def closer():
            yield from chan.close()

        c, k = started(vm, consumer, closer)
        assert c.tid not in vm.enabled_threads()
        vm.step(k.tid)
        assert c.tid in vm.enabled_threads()


class TestNonBlockingAndTimeouts:
    def test_try_recv_yields_when_empty(self):
        vm = VirtualMachine()
        chan = Channel()
        results = []

        def body():
            results.append((yield from chan.try_recv()))

        (t,) = started(vm, body)
        assert vm.is_yielding(t.tid)
        vm.step(t.tid)
        assert results == [(False, None)]

    def test_try_send_yields_when_full(self):
        vm = VirtualMachine()
        chan = Channel(capacity=1)
        results = []

        def body():
            yield from chan.send("x")
            results.append((yield from chan.try_send("y")))

        (t,) = started(vm, body)
        vm.step(t.tid)
        assert vm.is_yielding(t.tid)
        vm.step(t.tid)
        assert results == [False]
        assert chan.size() == 1

    def test_timed_send_succeeds_with_space(self):
        vm = VirtualMachine()
        chan = Channel(capacity=1)
        results = []

        def body():
            results.append((yield from chan.send("x", timeout=5)))

        (t,) = started(vm, body)
        assert not vm.is_yielding(t.tid)
        vm.step(t.tid)
        assert results == [True]


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Channel(capacity=0)


def test_signature_and_counters():
    chan = Channel(name="c")
    assert chan.state_signature() == ("chan", "c", (), False)
    assert chan.total_sent() == 0
