"""Event semantics (manual- and auto-reset)."""

from repro.runtime.vm import VirtualMachine
from repro.sync.event import Event


def started(vm, *bodies):
    tasks = [vm.spawn_task(body, name=f"t{i}") for i, body in enumerate(bodies)]
    for task in tasks:
        vm.step(task.tid)
    return tasks


class TestManualReset:
    def test_wait_blocks_until_set(self):
        vm = VirtualMachine()
        event = Event()

        def waiter():
            yield from event.wait()

        def setter():
            yield from event.set()

        w, s = started(vm, waiter, setter)
        assert w.tid not in vm.enabled_threads()
        vm.step(s.tid)
        assert w.tid in vm.enabled_threads()
        vm.step(w.tid)
        assert w.done

    def test_stays_signaled_for_multiple_waiters(self):
        vm = VirtualMachine()
        event = Event(signaled=True)

        def waiter():
            yield from event.wait()

        a, b = started(vm, waiter, waiter)
        vm.step(a.tid)
        vm.step(b.tid)
        assert a.done and b.done
        assert event.is_signaled()

    def test_reset(self):
        vm = VirtualMachine()
        event = Event(signaled=True)

        def body():
            yield from event.reset()

        (task,) = started(vm, body)
        vm.step(task.tid)
        assert not event.is_signaled()


class TestAutoReset:
    def test_one_waiter_consumes_signal(self):
        vm = VirtualMachine()
        event = Event(signaled=True, auto_reset=True)

        def waiter():
            yield from event.wait()

        a, b = started(vm, waiter, waiter)
        assert vm.enabled_threads() == frozenset({a.tid, b.tid})
        vm.step(a.tid)
        assert a.done
        assert not event.is_signaled()
        # The second waiter lost the race and is now blocked.
        assert b.tid not in vm.enabled_threads()


class TestTimeouts:
    def test_wait_timeout_yields_when_unsignaled(self):
        vm = VirtualMachine()
        event = Event()
        results = []

        def body():
            results.append((yield from event.wait(timeout=2)))

        (task,) = started(vm, body)
        assert task.tid in vm.enabled_threads()
        assert vm.is_yielding(task.tid)
        vm.step(task.tid)
        assert results == [False]

    def test_wait_timeout_not_yielding_when_signaled(self):
        vm = VirtualMachine()
        event = Event(signaled=True)
        results = []

        def body():
            results.append((yield from event.wait(timeout=2)))

        (task,) = started(vm, body)
        assert not vm.is_yielding(task.tid)
        vm.step(task.tid)
        assert results == [True]


def test_signature():
    assert Event(name="e").state_signature() == ("event", "e", False)
