"""Condition variable semantics: wait/notify phases, lost wakeups."""

import pytest

from repro.runtime.api import pause
from repro.runtime.errors import SyncUsageError
from repro.runtime.vm import VirtualMachine
from repro.sync.condvar import CondVar
from repro.sync.mutex import Mutex


def started(vm, *named_bodies):
    tasks = [vm.spawn_task(body, name=name) for name, body in named_bodies]
    for task in tasks:
        vm.step(task.tid)
    return tasks


def make_pair():
    lock = Mutex(name="m")
    cond = CondVar(lock, name="cv")
    return lock, cond


class TestWaitNotify:
    def test_wait_releases_lock_and_blocks(self):
        vm = VirtualMachine()
        lock, cond = make_pair()

        def waiter():
            yield from lock.acquire()
            yield from cond.wait()
            yield from lock.release()

        (w,) = started(vm, ("w", waiter))
        vm.step(w.tid)  # acquire
        vm.step(w.tid)  # wait phase 1: release + enqueue
        assert not lock.held()
        assert cond.waiter_count() == 1
        assert w.tid not in vm.enabled_threads()  # blocked for notify

    def test_notify_wakes_and_reacquires(self):
        vm = VirtualMachine()
        lock, cond = make_pair()
        got = []

        def waiter():
            yield from lock.acquire()
            notified = yield from cond.wait()
            got.append(notified)
            yield from lock.release()

        def notifier():
            yield from lock.acquire()
            yield from cond.notify()
            yield from lock.release()

        w, n = started(vm, ("w", waiter), ("n", notifier))
        vm.step(w.tid)  # w: acquire
        vm.step(w.tid)  # w: release+enqueue
        vm.step(n.tid)  # n: acquire
        vm.step(n.tid)  # n: notify
        assert w.tid in vm.enabled_threads()
        vm.step(w.tid)  # w: woken, returns from block phase
        # w must reacquire the mutex, currently held by n: blocked.
        assert w.tid not in vm.enabled_threads()
        vm.step(n.tid)  # n: release
        vm.step(w.tid)  # w: reacquire
        vm.step(w.tid)  # w: release
        assert got == [True]

    def test_notify_without_waiters_is_lost(self):
        """Notifications are not remembered — the lost-wakeup behavior
        real condvars have, which the checker must be able to explore."""
        vm = VirtualMachine()
        lock, cond = make_pair()

        def notifier():
            yield from lock.acquire()
            yield from cond.notify()
            yield from lock.release()

        def waiter():
            yield from lock.acquire()
            yield from cond.wait()
            yield from lock.release()

        n, w = started(vm, ("n", notifier), ("w", waiter))
        for _ in range(3):
            vm.step(n.tid)  # the notify happens first and is lost
        vm.step(w.tid)
        vm.step(w.tid)
        assert w.tid not in vm.enabled_threads()  # waits forever

    def test_notify_all(self):
        vm = VirtualMachine()
        lock, cond = make_pair()

        def waiter():
            yield from lock.acquire()
            yield from cond.wait()
            yield from lock.release()

        def notifier():
            yield from lock.acquire()
            yield from cond.notify_all()
            yield from lock.release()

        a, b, n = started(vm, ("a", waiter), ("b", waiter), ("n", notifier))
        vm.step(a.tid)
        vm.step(a.tid)
        vm.step(b.tid)
        vm.step(b.tid)
        assert cond.waiter_count() == 2
        vm.step(n.tid)
        vm.step(n.tid)
        assert cond.waiter_count() == 0
        assert a.tid in vm.enabled_threads()
        assert b.tid in vm.enabled_threads()

    def test_notify_is_fifo(self):
        vm = VirtualMachine()
        lock, cond = make_pair()

        def waiter():
            yield from lock.acquire()
            yield from cond.wait()
            yield from lock.release()

        def notifier():
            yield from lock.acquire()
            yield from cond.notify()
            yield from lock.release()

        a, b, n = started(vm, ("a", waiter), ("b", waiter), ("n", notifier))
        for task in (a, b):
            vm.step(task.tid)
            vm.step(task.tid)
        vm.step(n.tid)
        vm.step(n.tid)  # notify exactly one: the first waiter
        assert a.tid in vm.enabled_threads()
        assert b.tid not in vm.enabled_threads()


class TestMisuse:
    def test_wait_without_lock_is_violation(self):
        vm = VirtualMachine()
        lock, cond = make_pair()

        def body():
            yield from cond.wait()

        (task,) = started(vm, ("t", body))
        with pytest.raises(SyncUsageError):
            vm.step(task.tid)


class TestTimeout:
    def test_timed_wait_can_time_out_and_reacquires(self):
        vm = VirtualMachine()
        lock, cond = make_pair()
        got = []

        def waiter():
            yield from lock.acquire()
            notified = yield from cond.wait(timeout=3)
            got.append(notified)
            yield from lock.release()

        (w,) = started(vm, ("w", waiter))
        vm.step(w.tid)  # acquire
        vm.step(w.tid)  # release + enqueue
        assert vm.is_yielding(w.tid)  # would time out: yielding op
        vm.step(w.tid)  # timeout fires
        vm.step(w.tid)  # reacquire
        vm.step(w.tid)  # release
        assert got == [False]
        assert cond.waiter_count() == 0


def test_signature():
    lock, cond = make_pair()
    assert cond.state_signature() == ("cond", "cv", (), ())
