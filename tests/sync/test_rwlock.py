"""Reader–writer lock semantics."""

import pytest

from repro.runtime.api import pause
from repro.runtime.errors import SyncUsageError
from repro.runtime.vm import VirtualMachine
from repro.sync.rwlock import RWLock


def started(vm, *bodies):
    tasks = [vm.spawn_task(body, name=f"t{i}") for i, body in enumerate(bodies)]
    for task in tasks:
        vm.step(task.tid)
    return tasks


def reader(lock):
    def body():
        yield from lock.acquire_read()
        yield from pause()
        yield from lock.release_read()

    return body


def writer(lock):
    def body():
        yield from lock.acquire_write()
        yield from pause()
        yield from lock.release_write()

    return body


class TestSharing:
    def test_multiple_readers_allowed(self):
        vm = VirtualMachine()
        lock = RWLock()
        a, b = started(vm, reader(lock), reader(lock))
        vm.step(a.tid)
        vm.step(b.tid)
        assert lock.reader_count() == 2

    def test_writer_excludes_readers(self):
        vm = VirtualMachine()
        lock = RWLock()
        w, r = started(vm, writer(lock), reader(lock))
        vm.step(w.tid)  # writer in
        assert lock.has_writer()
        assert r.tid not in vm.enabled_threads()
        vm.step(w.tid)  # pause
        vm.step(w.tid)  # release
        assert r.tid in vm.enabled_threads()

    def test_readers_exclude_writer(self):
        vm = VirtualMachine()
        lock = RWLock()
        r, w = started(vm, reader(lock), writer(lock))
        vm.step(r.tid)
        assert w.tid not in vm.enabled_threads()
        vm.step(r.tid)
        vm.step(r.tid)  # release read
        assert w.tid in vm.enabled_threads()

    def test_writer_excludes_writer(self):
        vm = VirtualMachine()
        lock = RWLock()
        a, b = started(vm, writer(lock), writer(lock))
        vm.step(a.tid)
        assert b.tid not in vm.enabled_threads()


class TestTimeouts:
    def test_timed_read_acquire_yields_under_writer(self):
        vm = VirtualMachine()
        lock = RWLock()
        results = []

        def impatient_reader():
            results.append((yield from lock.acquire_read(timeout=1)))

        w, r = started(vm, writer(lock), impatient_reader)
        vm.step(w.tid)
        assert r.tid in vm.enabled_threads()
        assert vm.is_yielding(r.tid)
        vm.step(r.tid)
        assert results == [False]

    def test_timed_write_acquire_yields_under_readers(self):
        vm = VirtualMachine()
        lock = RWLock()
        results = []

        def impatient_writer():
            results.append((yield from lock.acquire_write(timeout=1)))

        r, w = started(vm, reader(lock), impatient_writer)
        vm.step(r.tid)
        assert vm.is_yielding(w.tid)
        vm.step(w.tid)
        assert results == [False]


class TestMisuse:
    def test_release_read_not_held(self):
        vm = VirtualMachine()
        lock = RWLock()

        def body():
            yield from lock.release_read()

        (task,) = started(vm, body)
        with pytest.raises(SyncUsageError):
            vm.step(task.tid)

    def test_release_write_not_held(self):
        vm = VirtualMachine()
        lock = RWLock()

        def body():
            yield from lock.release_write()

        (task,) = started(vm, body)
        with pytest.raises(SyncUsageError):
            vm.step(task.tid)


def test_signature():
    lock = RWLock(name="rw")
    assert lock.state_signature() == ("rwlock", "rw", (), None)
