"""Semaphore semantics."""

import pytest

from repro.runtime.errors import SyncUsageError
from repro.runtime.vm import VirtualMachine
from repro.sync.semaphore import Semaphore


def started(vm, *bodies):
    tasks = [vm.spawn_task(body, name=f"t{i}") for i, body in enumerate(bodies)]
    for task in tasks:
        vm.step(task.tid)
    return tasks


class TestWait:
    def test_wait_decrements(self):
        vm = VirtualMachine()
        sem = Semaphore(2)

        def body():
            yield from sem.wait()
            yield from sem.wait()

        (task,) = started(vm, body)
        vm.step(task.tid)
        assert sem.count() == 1
        vm.step(task.tid)
        assert sem.count() == 0

    def test_wait_blocks_at_zero(self):
        vm = VirtualMachine()
        sem = Semaphore(0)

        def body():
            yield from sem.wait()

        (task,) = started(vm, body)
        assert task.tid not in vm.enabled_threads()

    def test_release_wakes_waiter(self):
        vm = VirtualMachine()
        sem = Semaphore(0)

        def waiter():
            yield from sem.wait()

        def releaser():
            yield from sem.release()

        w, r = started(vm, waiter, releaser)
        assert w.tid not in vm.enabled_threads()
        vm.step(r.tid)
        assert w.tid in vm.enabled_threads()

    def test_wait_with_timeout_enabled_and_yielding_at_zero(self):
        vm = VirtualMachine()
        sem = Semaphore(0)
        results = []

        def body():
            results.append((yield from sem.wait(timeout=1)))

        (task,) = started(vm, body)
        assert task.tid in vm.enabled_threads()
        assert vm.is_yielding(task.tid)
        vm.step(task.tid)
        assert results == [False]

    def test_wait_with_timeout_not_yielding_when_available(self):
        vm = VirtualMachine()
        sem = Semaphore(1)

        def body():
            yield from sem.wait(timeout=1)

        (task,) = started(vm, body)
        assert not vm.is_yielding(task.tid)


class TestRelease:
    def test_release_n(self):
        vm = VirtualMachine()
        sem = Semaphore(0)

        def body():
            yield from sem.release(3)

        (task,) = started(vm, body)
        vm.step(task.tid)
        assert sem.count() == 3

    def test_release_over_maximum_is_violation(self):
        vm = VirtualMachine()
        sem = Semaphore(1, maximum=1)

        def body():
            yield from sem.release()

        (task,) = started(vm, body)
        with pytest.raises(SyncUsageError):
            vm.step(task.tid)

    def test_release_nonpositive_rejected(self):
        sem = Semaphore(0)
        with pytest.raises(ValueError):
            list(sem.release(0))


class TestConstruction:
    def test_negative_initial_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(-1)

    def test_initial_over_maximum_rejected(self):
        with pytest.raises(ValueError):
            Semaphore(3, maximum=2)

    def test_signature(self):
        assert Semaphore(2, name="s").state_signature() == ("sem", "s", 2)
