"""Mutex semantics: blocking, try-acquire yield inference, misuse."""

import pytest

from repro.engine.results import Outcome
from repro.runtime.api import pause
from repro.runtime.errors import SyncUsageError
from repro.runtime.program import VMProgram
from repro.runtime.vm import VirtualMachine
from repro.sync.mutex import Mutex

from tests.helpers import run_once


def start(vm, *bodies):
    tasks = [vm.spawn_task(body, name=f"t{i}") for i, body in enumerate(bodies)]
    for task in tasks:
        vm.step(task.tid)  # execute start transitions
    return tasks


class TestAcquireRelease:
    def test_acquire_sets_owner(self):
        vm = VirtualMachine()
        lock = Mutex(name="L")

        def body():
            yield from lock.acquire()
            yield from lock.release()

        (task,) = start(vm, body)
        vm.step(task.tid)
        assert lock.held()
        assert lock.held_by(task)
        assert lock.owner_name() == "t0"
        vm.step(task.tid)
        assert not lock.held()

    def test_contender_disabled_until_release(self):
        vm = VirtualMachine()
        lock = Mutex()

        def holder():
            yield from lock.acquire()
            yield from pause()
            yield from lock.release()

        def contender():
            yield from lock.acquire()
            yield from lock.release()

        h, c = start(vm, holder, contender)
        vm.step(h.tid)  # acquire
        assert vm.enabled_threads() == frozenset({h.tid})
        vm.step(h.tid)  # pause
        vm.step(h.tid)  # release
        assert c.tid in vm.enabled_threads()

    def test_release_unowned_is_violation(self):
        vm = VirtualMachine()
        lock = Mutex(name="L")

        def body():
            yield from lock.release()

        (task,) = start(vm, body)
        with pytest.raises(SyncUsageError):
            vm.step(task.tid)

    def test_release_someone_elses_lock_is_violation(self):
        vm = VirtualMachine()
        lock = Mutex()

        def holder():
            yield from lock.acquire()
            yield from pause()
            yield from lock.release()

        def thief():
            yield from lock.release()

        h, t = start(vm, holder, thief)
        vm.step(h.tid)
        with pytest.raises(SyncUsageError):
            vm.step(t.tid)

    def test_self_deadlock_on_reacquire(self):
        def setup(env):
            lock = Mutex()

            def body():
                yield from lock.acquire()
                yield from lock.acquire()

            env.spawn(body, name="d")

        record = run_once(VMProgram(setup))
        assert record.outcome is Outcome.DEADLOCK


class TestTryAcquire:
    def test_try_acquire_success_and_failure(self):
        vm = VirtualMachine()
        lock = Mutex()
        results = []

        def body():
            results.append((yield from lock.try_acquire()))
            results.append((yield from lock.try_acquire()))

        (task,) = start(vm, body)
        vm.step(task.tid)
        vm.step(task.tid)
        assert results == [True, False]

    def test_failing_try_acquire_is_yielding(self):
        """A failing TryAcquire is a zero-timeout wait, hence a yield."""
        vm = VirtualMachine()
        lock = Mutex()

        def holder():
            yield from lock.acquire()
            yield from pause()
            yield from lock.release()

        def prober():
            yield from lock.try_acquire()

        h, p = start(vm, holder, prober)
        assert not vm.is_yielding(p.tid)  # lock free: would succeed
        vm.step(h.tid)  # holder acquires
        assert vm.is_yielding(p.tid)  # would fail: yields

    def test_try_acquire_always_enabled(self):
        vm = VirtualMachine()
        lock = Mutex()

        def holder():
            yield from lock.acquire()
            yield from pause()
            yield from lock.release()

        def prober():
            yield from lock.try_acquire()

        h, p = start(vm, holder, prober)
        vm.step(h.tid)
        assert p.tid in vm.enabled_threads()


class TestTimeout:
    def test_acquire_with_timeout_enabled_when_held(self):
        vm = VirtualMachine()
        lock = Mutex()
        outcome = []

        def holder():
            yield from lock.acquire()
            yield from pause()
            yield from lock.release()

        def impatient():
            outcome.append((yield from lock.acquire(timeout=5)))

        h, i = start(vm, holder, impatient)
        vm.step(h.tid)  # lock held
        assert i.tid in vm.enabled_threads()
        assert vm.is_yielding(i.tid)  # would time out: yields
        vm.step(i.tid)
        assert outcome == [False]

    def test_acquire_with_timeout_succeeds_when_free(self):
        vm = VirtualMachine()
        lock = Mutex()
        outcome = []

        def body():
            outcome.append((yield from lock.acquire(timeout=5)))

        (task,) = start(vm, body)
        assert not vm.is_yielding(task.tid)
        vm.step(task.tid)
        assert outcome == [True]
        assert lock.held_by(task)


def test_state_signature_tracks_owner():
    lock = Mutex(name="L")
    assert lock.state_signature() == ("mutex", "L", None)


def test_auto_names_unique():
    assert Mutex().name != Mutex().name
