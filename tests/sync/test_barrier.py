"""Barrier semantics."""

import pytest

from repro.runtime.vm import VirtualMachine
from repro.sync.barrier import Barrier


def started(vm, *bodies):
    tasks = [vm.spawn_task(body, name=f"t{i}") for i, body in enumerate(bodies)]
    for task in tasks:
        vm.step(task.tid)
    return tasks


def party(barrier, log=None, rounds=1):
    def body():
        for _ in range(rounds):
            released = yield from barrier.arrive_and_wait()
            if log is not None:
                log.append(released)

    return body


class TestRelease:
    def test_all_parties_block_until_last_arrives(self):
        vm = VirtualMachine()
        barrier = Barrier(3)
        a, b, c = started(vm, party(barrier), party(barrier), party(barrier))
        vm.step(a.tid)  # a arrives
        vm.step(b.tid)  # b arrives
        assert a.tid not in vm.enabled_threads()
        assert b.tid not in vm.enabled_threads()
        vm.step(c.tid)  # c arrives: generation bumps, all released
        for task in (a, b, c):
            assert task.tid in vm.enabled_threads()
            vm.step(task.tid)
            assert task.done

    def test_reusable_across_generations(self):
        vm = VirtualMachine()
        barrier = Barrier(2)
        a, b = started(vm, party(barrier, rounds=2), party(barrier, rounds=2))
        # Round 1.
        vm.step(a.tid)
        vm.step(b.tid)
        vm.step(a.tid)
        vm.step(b.tid)
        # Round 2.
        vm.step(a.tid)
        assert a.tid not in vm.enabled_threads()
        vm.step(b.tid)
        vm.step(a.tid)
        vm.step(b.tid)
        assert a.done and b.done
        assert barrier._generation == 2

    def test_single_party_never_blocks(self):
        vm = VirtualMachine()
        barrier = Barrier(1)
        log = []
        (a,) = started(vm, party(barrier, log))
        vm.step(a.tid)
        vm.step(a.tid)
        assert a.done
        assert log == [True]


class TestTimeout:
    def test_timed_wait_yields_and_times_out(self):
        vm = VirtualMachine()
        barrier = Barrier(2)
        log = []

        def impatient():
            log.append((yield from barrier.arrive_and_wait(timeout=1)))

        (task,) = started(vm, impatient)
        vm.step(task.tid)  # arrive
        assert vm.is_yielding(task.tid)
        vm.step(task.tid)  # timeout
        assert log == [False]
        # The arrival still counts: a later second party releases alone.
        assert barrier.waiting() == 1


def test_invalid_parties():
    with pytest.raises(ValueError):
        Barrier(0)


def test_signature():
    assert Barrier(2, name="b").state_signature() == ("barrier", "b", 0, 0)
