"""Disabled-profiler overhead: the nil-guard must stay under 2%.

The decision profiler hangs off the executor inner loop, the hottest
code in the repo; docs/profiling.md promises that with no profiler
attached the only cost is ``profiler is not None`` checks.  This
benchmark measures that promise two ways:

* the gate — a micro-measurement of the guard itself against the
  measured per-transition cost of a counted ``observer=None`` search:
  the executor runs ~3 guards per transition, and even a 10-guard
  budget must stay under 2% of a transition;
* context — an A/B sweep against an observer *with* metrics but no
  profiler, reported (not gated: the observer's metrics recording
  legitimately costs more than the profiler guards).
"""

import time

from repro.bench.tables import format_table
from repro.checker import Checker
from repro.engine.strategies import ExplorationLimits  # noqa: F401  (doc link)
from repro.workloads.dining import dining_philosophers

ROUNDS = 5


def run_counted(observer):
    checker = Checker(
        dining_philosophers(2),
        depth_bound=300,
        stop_on_first_violation=False,
        stop_on_first_divergence=False,
        handle_signals=False,
        observer=observer,
    )
    start = time.perf_counter()
    result = checker.run()
    seconds = time.perf_counter() - start
    return result.exploration.transitions, seconds


def best_per_transition(make_observer):
    """Best-of-ROUNDS per-transition seconds (min filters scheduler
    noise, the standard microbenchmark reduction)."""
    best = float("inf")
    transitions = 0
    for _ in range(ROUNDS):
        transitions, seconds = run_counted(make_observer())
        best = min(best, seconds / transitions)
    return transitions, best


def test_disabled_profiler_overhead(report):
    transitions, base = best_per_transition(lambda: None)

    def bare_observer():
        from repro.obs import Observer

        return Observer()  # no profiler attached: the disabled path

    _, guarded = best_per_transition(bare_observer)

    # The gate: the raw cost of the guard the executor actually runs.
    profiler = None
    loops = 1_000_000
    start = time.perf_counter()
    for _ in range(loops):
        if profiler is not None:  # pragma: no cover - never taken
            raise AssertionError
    guard_seconds = (time.perf_counter() - start) / loops

    report("profiler_overhead", format_table(
        ["variant", "per-transition", "vs baseline"],
        [
            ["observer=None", f"{base * 1e6:.2f}us", "1.00x"],
            ["observer, no profiler", f"{guarded * 1e6:.2f}us",
             f"{guarded / base:.3f}x"],
            ["raw nil-guard", f"{guard_seconds * 1e9:.1f}ns",
             f"{guard_seconds / base:.2e}x"],
        ],
        title=f"Disabled-profiler overhead — dining(2) counted DFS, "
              f"{transitions} transitions, best of {ROUNDS}",
    ))

    # The executor adds ~3 guards per transition; gate a 10-guard
    # budget so the bound survives future call sites.
    assert 10 * guard_seconds < 0.02 * base, (
        f"nil-guard cost {guard_seconds * 1e9:.0f}ns per check is not "
        f"negligible against {base * 1e6:.2f}us per transition"
    )
    # Context only (never gated): the observer path pays for metrics
    # recording, not for the profiler.
    assert guarded > 0


def test_enabled_profiler_smoke(report):
    """Profiling enabled must stay sane (not gated, reported)."""
    from repro.obs import Observer
    from repro.obs.profile import DecisionProfiler

    profiler = DecisionProfiler()
    transitions, seconds = run_counted(Observer(profiler=profiler))
    assert profiler.total_seconds > 0
    attributed = sum(node.steps for _, node in profiler.walk())
    assert attributed >= transitions
    report("profiler_enabled", format_table(
        ["metric", "value"],
        [
            ["wall seconds", f"{seconds:.3f}"],
            ["attributed seconds", f"{profiler.total_seconds:.3f}"],
            ["tree nodes", profiler.nodes],
            ["attributed steps", attributed],
        ],
        title="Enabled-profiler smoke — dining(2) counted DFS",
    ))
