"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper.  Results are
printed and also written to ``benchmarks/results/<name>.txt`` so they
survive pytest's output capture.  Set ``REPRO_BENCH_SCALE=full`` for the
larger configurations (closer to the paper's, minutes per table).
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "quick")


@pytest.fixture
def report():
    """Write a named experiment report to disk (and stdout)."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report


@pytest.fixture
def scale():
    return bench_scale()
