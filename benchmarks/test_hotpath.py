"""Exploration hot path: prefix replay cost with the snapshot cache.

Guided stateless search re-executes every decision prefix from the
initial state; ``docs/performance.md`` describes the prefix-snapshot
cache that fast-forwards those prefixes instead.  This benchmark runs the
DFS sweep over the bounded-buffer workload (and the work-stealing queue
at full scale) with the cache off and on — identical verdicts,
executions and transitions are enforced inside :func:`hotpath_replay`,
which raises on any mismatch — and records both runs' replay counters in
``BENCH_hotpath.json`` at the repo root.

Two gates, both for DFS on the bounded buffer:

* ``executions.replayed_steps`` must drop by at least 2× (the step win);
* cache-on must strictly beat cache-off in **wall-clock seconds** (the
  seconds win the O(changed) capture/restore made possible — ROADMAP
  open item 1).  The gate compares two runs on the *same* machine in
  the same process, so host speed cancels out; cross-machine drift is
  gated separately via the ``cache_speedup`` ratio in
  ``repro bench compare``.
"""

import json
import pathlib

from repro.bench.experiments import bench_provenance, hotpath_replay
from repro.bench.tables import format_table
from repro.workloads.boundedbuffer import bounded_buffer_program
from repro.workloads.wsq import work_stealing_queue

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_hotpath_replay(benchmark, report, scale):
    def sweep():
        entries = [
            hotpath_replay(
                lambda: bounded_buffer_program(items=2, consumers=2),
                depth_bound=200, preemption_bound=2,
                snapshot_interval=4, max_executions=250,
            ),
        ]
        if scale == "full":
            entries.append(hotpath_replay(
                lambda: work_stealing_queue(items=1, stealers=1),
                depth_bound=200, preemption_bound=2,
                snapshot_interval=4, max_executions=500,
            ))
        return entries

    entries = benchmark.pedantic(sweep, rounds=1, iterations=1)

    payload = {
        "bench": "hotpath_replay",
        "scale": scale,
        **bench_provenance(),
        "entries": entries,
    }
    bench_path = REPO_ROOT / "BENCH_hotpath.json"
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")

    rows = []
    for entry in entries:
        for run in entry["runs"]:
            rows.append([
                entry["program"],
                "on" if run["snapshot_cache"] else "off",
                f"{run['seconds']:.2f}",
                run["replayed_steps"],
                run["restored_steps"],
                run["snapshot_hits"],
            ])
        rows.append([entry["program"], "reduction",
                     f"{entry['replayed_reduction']}x steps / "
                     f"{entry['cache_speedup']}x seconds", "", "", ""])
    report("hotpath_replay", format_table(
        ["program", "cache", "seconds", "replayed", "restored", "hits"],
        rows,
        title="Prefix replay cost — snapshot cache off vs on "
              "(identical totals enforced)",
    ))

    gated = entries[0]
    assert gated["replayed_reduction"] >= 2.0, (
        f"{gated['program']}: replayed-steps reduction "
        f"{gated['replayed_reduction']}x < 2x with the snapshot cache"
    )
    runs = {run["snapshot_cache"]: run for run in gated["runs"]}
    assert runs[True]["seconds"] < runs[False]["seconds"], (
        f"{gated['program']}: snapshot cache lost in wall-clock — "
        f"{runs[True]['seconds']:.3f}s on vs {runs[False]['seconds']:.3f}s "
        f"off (cache_speedup {gated['cache_speedup']}x)"
    )
