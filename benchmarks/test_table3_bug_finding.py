"""Table 3: executions and time to find each seeded bug, with and
without fairness.

Configuration mirrors the paper: context bound 2 preemptions for both
searches; the unfair baseline uses a depth bound of 250 with random
completion (the minimum the paper needed).  Expected shape: fairness
finds each bug in fewer executions / less time, and the deepest bugs are
missed by the unfair baseline within its budget ("-" rows).
"""

from repro.bench.experiments import find_bug
from repro.bench.tables import format_table
from repro.workloads.dryad_channels import dryad_pipeline
from repro.workloads.wsq import work_stealing_queue

BUGS = [
    ("WSQ bug 1", lambda: work_stealing_queue(items=1, stealers=1, bug=1)),
    ("WSQ bug 2", lambda: work_stealing_queue(items=1, stealers=1, bug=2)),
    ("WSQ bug 3", lambda: work_stealing_queue(items=2, stealers=1, bug=3,
                                              interleaved=True)),
    ("Dryad bug 1", lambda: dryad_pipeline(items=1, capacity=1,
                                           transforms=0, sinks=2, bug=1)),
    ("Dryad bug 2", lambda: dryad_pipeline(items=2, capacity=1,
                                           transforms=0, sources=2, bug=2)),
    ("Dryad bug 3", lambda: dryad_pipeline(items=2, capacity=2,
                                           transforms=0, bug=3)),
    ("Dryad bug 4", lambda: dryad_pipeline(items=1, capacity=1,
                                           transforms=0, sinks=2, bug=4)),
]


#: Per-row budget overrides: Dryad bug 2 is the deepest seeded bug (a
#: two-sender capacity race behind an early scheduling decision, which
#: depth-first order reaches last) — the paper's hardest rows similarly
#: needed 10-100x more executions.
EXTRA_BUDGET = {"Dryad bug 2": 120.0}


def run_table(max_seconds):
    rows = []
    raw = []
    for name, factory in BUGS:
        budget = max(max_seconds, EXTRA_BUDGET.get(name, 0.0))
        fair = find_bug(factory, fair=True, preemption_bound=2,
                        max_seconds=budget)
        unfair = find_bug(factory, fair=False, preemption_bound=2,
                          nonfair_depth_bound=250, max_seconds=budget)
        rows.append([
            name,
            fair.executions_label, unfair.executions_label,
            fair.seconds_label, unfair.seconds_label,
        ])
        raw.append((name, fair, unfair))
    return rows, raw


def test_table3_bug_finding(benchmark, report, scale):
    max_seconds = 45.0 if scale == "quick" else 240.0
    rows, raw = benchmark.pedantic(
        run_table, args=(max_seconds,), rounds=1, iterations=1,
    )
    report("table3_bug_finding", format_table(
        ["bug", "execs (fair)", "execs (unfair)", "time (fair)",
         "time (unfair)"],
        rows,
        title="Table 3 — executions and seconds to the first bug "
              "(cb=2; unfair baseline: db=250 + random completion)",
    ))

    # Every seeded bug is found with fairness.
    for name, fair, unfair in raw:
        assert fair.found, f"{name} not found with fairness"

    # The paper's shape: fairness needs fewer executions (or the unfair
    # baseline misses the bug entirely) on most rows.
    wins = sum(
        1 for _, fair, unfair in raw
        if not unfair.found or (fair.executions or 0) <= (unfair.executions or 0)
    )
    assert wins >= len(raw) // 2, (
        f"fairness won only {wins}/{len(raw)} bug races"
    )
