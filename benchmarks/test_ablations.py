"""Ablation benchmarks for the design choices DESIGN.md calls out.

* ``k``-th-yield processing (end of Section 3): larger ``k`` weakens the
  priority updates — more executions for the same coverage, recovering
  soundness for states that need yielding executions.
* Preemption accounting (Section 4): counting fairness-forced switches
  against the context bound (the thing the paper says *not* to do) makes
  bounded search lose coverage.
* Round-robin fairness (Section 2): fair but not demonic — one schedule,
  terrible coverage; the reason the paper needs a *nondeterministic* fair
  scheduler.
"""

import dataclasses

from repro.bench.tables import format_table
from repro.core.policies import fair_policy, nonfair_policy, round_robin_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.statespace.stateful import stateful_state_count
from repro.workloads.dining import dining_philosophers
from repro.workloads.spinloop import spinloop

LIMITS = ExplorationLimits(max_executions=60_000, max_seconds=20.0,
                           stop_on_first_violation=False,
                           stop_on_first_divergence=False)


def coverage_with_policy(program_factory, policy_factory, *,
                         config=None) -> tuple:
    coverage = CoverageTracker()
    result = explore_dfs(
        program_factory(), policy_factory,
        config or ExecutorConfig(depth_bound=400),
        LIMITS, coverage=coverage,
    )
    return coverage.count, result.executions, result.limit_hit


class TestKYieldAblation:
    def test_k_parameter(self, benchmark, report):
        def run():
            truth = stateful_state_count(dining_philosophers(2),
                                         depth_bound=400).count
            rows = []
            for k in (1, 2, 3):
                states, executions, capped = coverage_with_policy(
                    lambda: dining_philosophers(2), fair_policy(k),
                )
                mark = "*" if capped else ""
                rows.append([f"k={k}", truth, states,
                             f"{executions}{mark}"])
            return rows

        rows = benchmark.pedantic(run, rounds=1, iterations=1)
        report("ablation_kyield", format_table(
            ["policy", "total states", "states covered", "executions"],
            rows,
            title="Ablation — process every k-th yield "
                  "(dining philosophers 2)",
        ))
        # All k achieve full coverage here; the cost is extra executions.
        baseline_execs = int(rows[0][3].rstrip("*"))
        k3_execs = int(rows[2][3].rstrip("*"))
        assert k3_execs >= baseline_execs
        for row in rows:
            assert row[2] >= row[1]


def contended_program():
    """A thread deprioritized by fairness gets blocked mid-window when a
    lock release re-enables the edge's sink — exactly the switch the
    paper says must not be charged to the context bound."""
    from repro.runtime.api import pause, yield_now
    from repro.runtime.program import VMProgram
    from repro.sync.mutex import Mutex

    def setup(env):
        lock = Mutex(name="L")
        pcs = {"t": 0}

        def t():
            yield from yield_now()  # open t's window
            yield from lock.acquire()  # disables u: enters D(t)
            yield from yield_now()  # adds the edge (t, u)
            yield from lock.release()  # u re-enabled: t priority-blocked
            pcs["t"] = 1
            yield from pause("epilogue")
            pcs["t"] = 2

        def u():
            yield from lock.acquire()
            yield from lock.release()

        env.spawn(t, name="t")
        env.spawn(u, name="u")
        env.set_state_fn(lambda: (lock.owner_name(), pcs["t"]))

    return VMProgram(setup, name="contended")


class TestPreemptionAccountingAblation:
    def test_counting_fairness_preemptions_prunes_the_search(
            self, benchmark, report):
        from repro.engine.results import Outcome

        def run():
            rows = []
            raw = {}
            for counted in (False, True):
                coverage = CoverageTracker()
                config = ExecutorConfig(
                    depth_bound=200, preemption_bound=1,
                    count_fairness_preemptions=counted,
                )
                result = explore_dfs(
                    contended_program(), fair_policy(), config, LIMITS,
                    coverage=coverage,
                )
                label = ("counted (ablation)" if counted
                         else "not counted (paper)")
                pruned = result.outcomes[Outcome.DEPTH_PRUNED]
                rows.append([label, coverage.count,
                             result.outcomes[Outcome.TERMINATED], pruned])
                raw[counted] = (coverage.count, pruned)
            return rows, raw

        (rows, raw) = benchmark.pedantic(run, rounds=1, iterations=1)
        report("ablation_preemption_accounting", format_table(
            ["fairness-forced switches", "states covered",
             "terminated executions", "pruned executions"],
            rows,
            title="Ablation — counting fairness-forced switches against "
                  "the context bound (cb=1, lock-contention program)",
        ))
        # The paper's rule never prunes; the ablation does.
        assert raw[False][1] == 0
        assert raw[True][1] > 0
        assert raw[False][0] >= raw[True][0]


class TestRoundRobinAblation:
    def test_round_robin_is_fair_but_useless(self, benchmark, report):
        def run():
            truth = stateful_state_count(dining_philosophers(2),
                                         depth_bound=400).count
            rows = []
            results = {}
            for name, factory in [("fair demonic", fair_policy()),
                                  ("round-robin", round_robin_policy())]:
                states, executions, _ = coverage_with_policy(
                    lambda: dining_philosophers(2), factory,
                )
                rows.append([name, truth, states, executions])
                results[name] = states
            return rows, results

        rows, results = benchmark.pedantic(run, rounds=1, iterations=1)
        report("ablation_round_robin", format_table(
            ["scheduler", "total states", "states covered", "executions"],
            rows,
            title="Ablation — a fair but deterministic scheduler "
                  "(Section 2's round-robin remark)",
        ))
        assert results["round-robin"] < results["fair demonic"]
