"""Section 4.1's headline: booting the (mini) OS under the checker.

Measures throughput of full boot+shutdown executions under the fair
scheduler — the demonstration that fair scheduling makes a large
nonterminating program checkable *without modification* — and verifies a
small systematic search finds no defects.
"""

from repro.bench.tables import format_table
from repro.checker import check
from repro.workloads.singularity import singularity_boot


def run_boot_campaign():
    random_result = check(
        singularity_boot(apps=3, requests_per_app=2),
        strategy="random", random_executions=25, depth_bound=20_000,
    )
    systematic_result = check(
        singularity_boot(apps=1), depth_bound=800, preemption_bound=1,
        max_executions=3_000,
    )
    return random_result, systematic_result


def test_singularity_boot(benchmark, report):
    random_result, systematic_result = benchmark.pedantic(
        run_boot_campaign, rounds=1, iterations=1,
    )
    rows = [
        ["random (25 boots, 3 apps)",
         random_result.exploration.executions,
         random_result.exploration.transitions,
         "PASS" if random_result.ok else "FAIL"],
        ["systematic cb=1 (1 app)",
         systematic_result.exploration.executions,
         systematic_result.exploration.transitions,
         "PASS" if systematic_result.ok else "FAIL"],
    ]
    report("singularity_boot", format_table(
        ["campaign", "executions", "transitions", "verdict"],
        rows,
        title="Section 4.1 — mini-Singularity boot + shutdown under the "
              "fair checker",
    ))
    assert random_result.ok
    assert systematic_result.ok
    # Every random boot ran to completion (fair termination).
    from repro.engine.results import Outcome

    assert random_result.exploration.outcomes[Outcome.TERMINATED] == 25
