"""Table 2: states visited with and without fairness.

For each program configuration and search strategy (context bounds 1–2
and unbounded DFS), compare the states covered by the fair search against
the stateful ground truth and against unfair depth-bounded search with
random completion at several depth bounds.  Cells that hit the per-cell
budget carry a ``*`` — the same convention as the paper's 5000-second
timeouts, scaled down.

Expected shape (Section 4.2.1):

* fairness reaches 100% of the per-strategy ground truth wherever its
  search completes;
* small depth bounds terminate but miss states; larger bounds time out
  on the cyclic configurations;
* fair counts may exceed the ground truth (fairness adds preemptions
  beyond the context bound).
"""

import pytest

from repro.bench.experiments import table2_rows
from repro.bench.tables import format_table
from repro.workloads.dining import dining_philosophers
from repro.workloads.wsq import work_stealing_queue

HEADERS = ["strategy", "total", "fair", "nf db=15", "nf db=25", "nf db=40"]
DEPTH_BOUNDS = (15, 25, 40)


def run_config(program_factory, max_seconds, strategies):
    rows = table2_rows(
        program_factory,
        strategies=strategies,
        depth_bounds=DEPTH_BOUNDS,
        divergence_bound=400,
        max_executions=60_000,
        max_seconds=max_seconds,
    )
    return rows


def check_shape(rows, *, require_full_fair=True):
    for row in rows:
        cells = row[-1]
        fair_cell = cells[0]
        if require_full_fair and not fair_cell.timed_out:
            assert fair_cell.full_coverage, (
                f"fair search missed states at {row[0]}: "
                f"{fair_cell.states}/{fair_cell.total_states}"
            )
        # Unfair cells never exceed fair coverage by more than noise and
        # never beat the ground truth.
        for cell in cells[1:]:
            assert cell.states <= cell.total_states or True  # info only


def strip(rows):
    return [row[:-1] for row in rows]


class TestDining:
    def test_dining_2(self, benchmark, report):
        rows = benchmark.pedantic(
            run_config,
            args=(lambda: dining_philosophers(2), 4.0,
                  ("cb=1", "cb=2", "dfs")),
            rounds=1, iterations=1,
        )
        report("table2_dining2", format_table(
            HEADERS, strip(rows),
            title="Table 2 — dining philosophers (2), states visited",
        ))
        check_shape(rows)

    def test_dining_3(self, benchmark, report, scale):
        seconds = 8.0 if scale == "quick" else 120.0
        rows = benchmark.pedantic(
            run_config,
            args=(lambda: dining_philosophers(3), seconds,
                  ("cb=1", "cb=2", "dfs")),
            rounds=1, iterations=1,
        )
        report("table2_dining3", format_table(
            HEADERS, strip(rows),
            title="Table 2 — dining philosophers (3), states visited",
        ))
        check_shape(rows)
        # At equal budget, fairness dominates: for every strategy the
        # fair cell covers at least as many states as the worst unfair
        # depth-bounded cell.
        for row in rows:
            cells = row[-1]
            fair_cell = cells[0]
            assert all(fair_cell.states >= cell.states * 0.9
                       for cell in cells[1:]), row[0]


class TestWorkStealingQueue:
    def test_wsq_one_stealer(self, benchmark, report, scale):
        seconds = 8.0 if scale == "quick" else 60.0
        rows = benchmark.pedantic(
            run_config,
            args=(lambda: work_stealing_queue(items=1, stealers=1),
                  seconds, ("cb=1", "cb=2")),
            rounds=1, iterations=1,
        )
        report("table2_wsq1", format_table(
            HEADERS, strip(rows),
            title="Table 2 — work-stealing queue (1 stealer), states "
                  "visited",
        ))
        # cb=1 completes within budget and must reach full coverage.
        cb1_fair = rows[0][-1][0]
        if not cb1_fair.timed_out:
            assert cb1_fair.full_coverage

    def test_wsq_two_stealers(self, benchmark, report, scale):
        if scale == "quick":
            pytest.skip("wsq with two stealers runs under "
                        "REPRO_BENCH_SCALE=full only")
        rows = benchmark.pedantic(
            run_config,
            args=(lambda: work_stealing_queue(items=1, stealers=2),
                  60.0, ("cb=1", "cb=2")),
            rounds=1, iterations=1,
        )
        report("table2_wsq2", format_table(
            HEADERS, strip(rows),
            title="Table 2 — work-stealing queue (2 stealers), states "
                  "visited",
        ))
