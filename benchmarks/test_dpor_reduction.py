"""Source-DPOR vs sleep sets: execution-count reduction (ROADMAP item 4).

Sleep sets prune redundant *transitions* but still visit every state of
the bounded tree; source-DPOR only creates branches where two executed
transitions actually raced.  This benchmark runs both reducers under the
fair scheduler on three workloads spanning the independence spectrum —
fully independent lock lanes, the ABBA deadlock pair, and the contended
dining philosophers — and records executions, transitions and wall time
per reducer in ``BENCH_dpor.json`` at the repo root.

The fair scheduler already prunes most of dining's spinning tree, so a
fourth row runs dining(2) under the nonfair scheduler, where the full
interleaving explosion is visible and DPOR's reduction reaches the
paper-scale two orders of magnitude.

The gates: on every workload DPOR must explore *strictly fewer*
executions than sleep sets while reaching the same verdict inventory
(deadlock found / violation found), and on nonfair dining(2) the
reduction must be at least 10x.  ``repro bench compare`` then guards the
recorded counts exactly (executions and transitions are deterministic)
and the ``speedup`` field — por executions over dpor executions —
within the regression tolerance.
"""

import json
import pathlib
import time

from repro.bench.experiments import bench_provenance
from repro.bench.tables import format_table
from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.results import Outcome
from repro.engine.strategies import (
    ExplorationLimits,
    explore_dfs_sleepsets,
    explore_source_dpor,
)
from repro.runtime.program import VMProgram
from repro.sync.mutex import Mutex
from repro.workloads.dining import dining_philosophers

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

DEPTH_BOUND = 300
LIMITS = ExplorationLimits(max_executions=60_000, max_seconds=60.0,
                           stop_on_first_violation=False,
                           stop_on_first_divergence=False)


def lanes_program(n):
    """n fully independent lock/unlock threads (maximum reduction)."""

    def setup(env):
        locks = [Mutex(name=f"m{i}") for i in range(n)]

        def worker(m):
            yield from m.acquire()
            yield from m.release()

        for i in range(n):
            env.spawn(worker, locks[i], name=f"w{i}")
        env.set_state_fn(lambda: tuple(m.owner_name() for m in locks))

    return VMProgram(setup, name=f"lanes({n})")


def abba_program():
    """Opposite-order lock pair: the classic ABBA deadlock."""

    def setup(env):
        a, b = Mutex(name="a"), Mutex(name="b")

        def locker(first, second):
            yield from first.acquire()
            yield from second.acquire()
            yield from second.release()
            yield from first.release()

        env.spawn(locker, a, b, name="t0")
        env.spawn(locker, b, a, name="t1")
        env.set_state_fn(lambda: (a.owner_name(), b.owner_name()))

    return VMProgram(setup, name="abba")


WORKLOADS = [
    ("lanes(3)", lambda: lanes_program(3), "fair"),
    ("abba", abba_program, "fair"),
    ("dining(2)", lambda: dining_philosophers(2), "fair"),
    ("dining(2) nonfair", lambda: dining_philosophers(2), "nonfair"),
]


def run_reducer(reducer, factory, policy):
    explore = (explore_source_dpor if reducer == "dpor"
               else explore_dfs_sleepsets)
    factory_fn = fair_policy if policy == "fair" else nonfair_policy
    started = time.perf_counter()
    result = explore(factory(), factory_fn(), depth_bound=DEPTH_BOUND,
                     limits=LIMITS)
    seconds = time.perf_counter() - started
    return {
        "strategy": reducer,
        "seconds": round(seconds, 3),
        "ok": result.complete,
        "executions": result.executions,
        "transitions": result.transitions,
        "deadlocks": result.outcomes[Outcome.DEADLOCK],
        "violations": result.outcomes[Outcome.VIOLATION],
    }


def test_dpor_reduction(benchmark, report, scale):
    def sweep():
        entries = []
        for name, factory, policy in WORKLOADS:
            por = run_reducer("por", factory, policy)
            dpor = run_reducer("dpor", factory, policy)
            dpor["speedup"] = round(
                por["executions"] / max(dpor["executions"], 1), 2)
            for row in (por, dpor):
                entries.append({
                    "program": name,
                    "depth_bound": DEPTH_BOUND,
                    "policy": policy,
                    **row,
                })
        return entries

    entries = benchmark.pedantic(sweep, rounds=1, iterations=1)

    payload = {
        "bench": "dpor_reduction",
        "scale": scale,
        **bench_provenance(),
        "entries": entries,
    }
    (REPO_ROOT / "BENCH_dpor.json").write_text(
        json.dumps(payload, indent=2) + "\n")

    rows = [[e["program"], e["policy"], e["strategy"], f"{e['seconds']:.2f}",
             e["executions"], e["transitions"], e["deadlocks"],
             e["violations"], e.get("speedup", "")]
            for e in entries]
    report("dpor_reduction", format_table(
        ["program", "policy", "reducer", "seconds", "executions",
         "transitions", "deadlocks", "violations", "reduction"],
        rows,
        title="Source-DPOR vs sleep sets — identical verdicts enforced",
    ))

    by_key = {(e["program"], e["strategy"]): e for e in entries}
    for name, _, _ in WORKLOADS:
        por, dpor = by_key[(name, "por")], by_key[(name, "dpor")]
        assert por["ok"] and dpor["ok"], f"{name}: reducer hit a limit"
        assert (dpor["deadlocks"] > 0) == (por["deadlocks"] > 0), (
            f"{name}: deadlock verdict diverged")
        assert (dpor["violations"] > 0) == (por["violations"] > 0), (
            f"{name}: violation verdict diverged")
        assert dpor["executions"] < por["executions"], (
            f"{name}: no reduction ({dpor['executions']} vs "
            f"{por['executions']})")
    dining = by_key[("dining(2) nonfair", "dpor")]
    assert dining["speedup"] >= 10, (
        f"dining(2) nonfair: reduction {dining['speedup']}x < 10x")
