"""Parallel sharded search: the Fig. 5/6 sweep at ``workers=1`` vs
``workers=4``.

The counted sweeps behind Figures 5/6 (dining philosophers, the
work-stealing queue) are repeated through ``Checker(workers=N)``; the
determinism contract — identical verdicts, executions and transitions at
every worker count — is enforced inside :func:`parallel_speedup`, which
raises on any mismatch, so a timing row only exists for runs that agreed
with the serial baseline.  Results land in ``BENCH_parallel.json`` at the
repo root alongside the per-run wall times, the speedup over serial and
the machine's core count: on single-core machines the parallel run is
*slower* (the pool is pure overhead), which the JSON records honestly —
the ≥2.5× speedup target is asserted only when the hardware has the four
cores it presumes.
"""

import json
import os
import pathlib

from repro.bench.experiments import bench_provenance, parallel_speedup
from repro.bench.tables import format_table
from repro.workloads.dining import dining_philosophers
from repro.workloads.wsq import work_stealing_queue

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
WORKER_COUNTS = (1, 4)


def test_parallel_speedup(benchmark, report, scale):
    wsq_bound = 2 if scale == "full" else 1

    def sweep():
        return [
            parallel_speedup(
                lambda: dining_philosophers(3),
                worker_counts=WORKER_COUNTS,
                depth_bound=400, preemption_bound=3,
            ),
            parallel_speedup(
                lambda: work_stealing_queue(items=1, stealers=1),
                worker_counts=WORKER_COUNTS,
                depth_bound=400, preemption_bound=wsq_bound,
            ),
        ]

    entries = benchmark.pedantic(sweep, rounds=1, iterations=1)

    payload = {
        "bench": "parallel_speedup",
        "scale": scale,
        **bench_provenance(),
        "worker_counts": list(WORKER_COUNTS),
        "entries": entries,
    }
    bench_path = REPO_ROOT / "BENCH_parallel.json"
    bench_path.write_text(json.dumps(payload, indent=2) + "\n")

    rows = []
    for entry in entries:
        for run in entry["runs"]:
            rows.append([entry["program"], run["workers"],
                         f"{run['seconds']:.2f}", run["executions"],
                         f"{run['speedup']:.2f}x"])
    report("parallel_speedup", format_table(
        ["program", "workers", "seconds", "executions", "speedup"], rows,
        title=f"Parallel sharded search — wall time by worker count "
              f"({os.cpu_count()} CPU core(s); identical totals enforced)",
    ))

    if (os.cpu_count() or 1) >= 4:
        for entry in entries:
            best = max(run["speedup"] for run in entry["runs"])
            assert best >= 2.5, (
                f"{entry['program']}: best speedup {best}x < 2.5x "
                f"on a {os.cpu_count()}-core machine"
            )
