"""Figure 2: nonterminating executions grow exponentially with the depth
bound.

The paper runs depth-bounded (unfair) stateless search on the Figure 1
dining-philosophers program and counts executions that hit the bound.
Our transition granularity differs from CHESS's, so the depth range is
scaled; the *shape* — exponential growth — is the reproduced result.
"""

from repro.bench.experiments import count_nonterminating_executions
from repro.bench.tables import format_table
from repro.workloads.dining import dining_philosophers_livelock


def run_sweep(depth_bounds, max_seconds):
    rows = []
    for depth_bound in depth_bounds:
        nonterminating, executions, seconds = count_nonterminating_executions(
            lambda: dining_philosophers_livelock(2),
            depth_bound,
            max_executions=300_000,
            max_seconds=max_seconds,
        )
        rows.append((depth_bound, nonterminating, executions,
                     f"{seconds:.2f}"))
    return rows


def test_fig2_nonterminating_executions(benchmark, report, scale):
    depth_bounds = (8, 10, 12, 14, 16, 18) if scale == "quick" else \
        (10, 14, 18, 22, 26, 30)
    rows = benchmark.pedantic(
        run_sweep, args=(depth_bounds, 30.0), rounds=1, iterations=1,
    )
    report("fig2_nonterminating_executions", format_table(
        ["depth bound", "nonterminating executions", "total executions",
         "seconds"],
        rows,
        title="Figure 2 — nonterminating executions vs depth bound "
              "(dining philosophers, Figure 1 program, unfair DFS)",
    ))

    counts = [row[1] for row in rows]
    assert counts[0] > 0
    # Exponential shape: each +4 depth steps should multiply the count;
    # require strictly increasing and at least 4x overall growth.
    assert all(b >= a for a, b in zip(counts, counts[1:]))
    assert counts[-1] >= 4 * max(counts[0], 1)
