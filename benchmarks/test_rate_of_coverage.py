"""Section 4.2.2 — rate of state coverage.

Beyond the end-of-search totals of Table 2, the paper argues fair search
*accumulates* coverage faster because it never wastes executions
unrolling unfair cycles.  This benchmark records the coverage-vs-
executions curve for fair and unfair search on the same program and
compares how quickly each reaches fixed coverage milestones.
"""

from repro.bench.tables import format_table
from repro.core.policies import fair_policy, nonfair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.strategies import ExplorationLimits, explore_dfs
from repro.workloads.dining import dining_philosophers

LIMITS = ExplorationLimits(max_executions=30_000, max_seconds=20.0,
                           stop_on_first_violation=False,
                           stop_on_first_divergence=False)


def coverage_curve(fair: bool):
    coverage = CoverageTracker()
    if fair:
        config = ExecutorConfig(depth_bound=400)
        policy = fair_policy()
    else:
        config = ExecutorConfig(depth_bound=25,
                                on_depth_exceeded="random-completion")
        policy = nonfair_policy()
    explore_dfs(dining_philosophers(3), policy, config, LIMITS,
                coverage=coverage)
    return coverage.history


def executions_to_reach(history, states: int):
    for executions, covered in history:
        if covered >= states:
            return executions
    return None


def test_rate_of_coverage(benchmark, report):
    def run():
        return coverage_curve(fair=True), coverage_curve(fair=False)

    fair_history, unfair_history = benchmark.pedantic(run, rounds=1,
                                                      iterations=1)
    milestones = (50, 75, 90, 95)
    total = max(covered for _, covered in fair_history)
    rows = []
    outcome = {}
    for pct in milestones:
        states = max(1, total * pct // 100)
        fair_at = executions_to_reach(fair_history, states)
        unfair_at = executions_to_reach(unfair_history, states)
        rows.append([f"{pct}% ({states} states)",
                     fair_at if fair_at is not None else "-",
                     unfair_at if unfair_at is not None else "-"])
        outcome[pct] = (fair_at, unfair_at)
    report("rate_of_coverage", format_table(
        ["coverage milestone", "executions (fair)", "executions (unfair, "
         "db=25 + random completion)"],
        rows,
        title="Section 4.2.2 — executions needed to reach coverage "
              "milestones (dining philosophers 3)",
    ))

    # The fair search reaches full coverage; at the top milestone it is
    # at least as fast as the unfair baseline (which may not get there
    # at all).
    fair_at, unfair_at = outcome[95]
    assert fair_at is not None
    assert unfair_at is None or fair_at <= unfair_at
