"""Figures 5 and 6: time to complete the search, with and without
fairness.

The paper plots (log scale) the wall time of each strategy with fairness
against unfair search at depth bounds 20–60: fairness explores the state
space exponentially faster because it does not unroll unfair cycles
(Theorem 4).  We reproduce the comparison on the same two configurations
(dining philosophers with 3 philosophers; work-stealing queue) with
scaled bounds.
"""

from repro.bench.experiments import search_times
from repro.bench.tables import format_table
from repro.workloads.dining import dining_philosophers
from repro.workloads.wsq import work_stealing_queue

HEADERS = ["strategy", "fair (s)", "nf db=15 (s)", "nf db=25 (s)",
           "nf db=40 (s)"]
DEPTH_BOUNDS = (15, 25, 40)


def strip(rows):
    return [row[:-1] for row in rows]


def assert_fair_wins_at_large_bounds(rows):
    """The reproduced claim: at the largest depth bound, unfair search is
    slower than fair search (often timing out) on cyclic programs."""
    advantage = 0
    for row in rows:
        cells = row[-1]
        fair_cell, largest_nonfair = cells[0], cells[-1]
        if largest_nonfair.timed_out or \
                largest_nonfair.seconds > fair_cell.seconds:
            advantage += 1
    assert advantage >= 1, "fair search never beat the unfair baseline"


def test_fig5_dining_search_time(benchmark, report):
    rows = benchmark.pedantic(
        search_times,
        args=(lambda: dining_philosophers(3),),
        kwargs=dict(strategies=("cb=1", "cb=2", "dfs"),
                    depth_bounds=DEPTH_BOUNDS,
                    max_executions=60_000, max_seconds=12.0),
        rounds=1, iterations=1,
    )
    report("fig5_dining_time", format_table(
        HEADERS, strip(rows),
        title="Figure 5 — dining philosophers (3): search time "
              "(fair vs unfair-with-depth-bound; * = budget hit)",
    ))
    assert_fair_wins_at_large_bounds(rows)


def test_fig6_wsq_search_time(benchmark, report, scale):
    seconds = 10.0 if scale == "quick" else 45.0
    rows = benchmark.pedantic(
        search_times,
        args=(lambda: work_stealing_queue(items=1, stealers=1),),
        kwargs=dict(strategies=("cb=1", "cb=2"),
                    depth_bounds=DEPTH_BOUNDS,
                    max_executions=60_000, max_seconds=seconds),
        rounds=1, iterations=1,
    )
    report("fig6_wsq_time", format_table(
        HEADERS, strip(rows),
        title="Figure 6 — work-stealing queue (1 stealer): search time "
              "(fair vs unfair-with-depth-bound; * = budget hit)",
    ))
    assert_fair_wins_at_large_bounds(rows)
