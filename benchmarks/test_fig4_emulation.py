"""Figure 4: emulation of Algorithm 1 on the Figure 3 spin loop.

Regenerates the annotated trace of Figure 4 — the values of P, S(u),
D(u), E(u) as the scheduler repeatedly runs thread ``u`` — and checks
every annotation against the paper.
"""

from repro.bench.tables import format_table
from repro.core.fairness import FairSchedulerState
from repro.core.model import StepInfo

BOTH = frozenset({"t", "u"})


def fmt(values):
    return "{" + ",".join(sorted(values)) + "}"


def emulate():
    state = FairSchedulerState(["t", "u"])
    rows = []
    labels = [
        "(a,c) initial",
        "(a,d) after u: while (x != 1)",
        "(a,c) after u: yield()",
        "(a,d) after u: while (x != 1)",
        "(a,c) after u: yield()",
    ]
    transitions = [None, False, True, False, True]
    for label, yielded in zip(labels, transitions):
        if yielded is not None:
            state.observe_step(StepInfo(
                tid="u", enabled_before=BOTH, enabled_after=BOTH,
                yielded=yielded,
            ))
        rows.append([
            label,
            fmt(state.scheduled_since_yield("u")),
            fmt(state.disabled_by("u")),
            fmt(state.continuously_enabled("u")),
            str(sorted(state.priority.edges())),
            fmt(state.schedulable(BOTH)),
        ])
    return rows, state


def test_fig4_emulation(benchmark, report):
    rows, state = benchmark.pedantic(emulate, rounds=1, iterations=1)
    report("fig4_emulation", format_table(
        ["state", "S(u)", "D(u)", "E(u)", "P", "T"],
        rows,
        title="Figure 4 — Algorithm 1 emulation on the Figure 3 spin loop",
    ))

    # The paper's annotations, row by row.
    assert rows[0][1:5] == ["{t,u}", "{t,u}", "{}", "[]"]
    assert rows[1][1:5] == ["{t,u}", "{t,u}", "{}", "[]"]
    assert rows[2][1:5] == ["{}", "{}", "{t,u}", "[]"]
    assert rows[3][1:5] == ["{u}", "{}", "{t,u}", "[]"]
    assert rows[4][4] == "[('u', 't')]"
    # After the second yield the scheduler is forced to run t.
    assert rows[4][5] == "{t}"
