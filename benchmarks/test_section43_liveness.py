"""Section 4.3: the two liveness findings, and why fairness is necessary.

* §4.3.1 — the worker pool's good-samaritan violation (Figure 7);
* §4.3.2 — the Promise stale-read livelock (Figure 8).

The reproduced claim is qualitative but sharp: the fair checker reports
both defects with the correct classification, while the unfair baseline —
which has no notion of fair vs unfair divergence — reports *nothing*
(liveness errors are invisible to plain depth-bounded stateless search).
"""

from repro.bench.tables import format_table
from repro.checker import check
from repro.engine.results import DivergenceKind
from repro.workloads.promise import promise_program
from repro.workloads.workerpool import worker_pool


def run_liveness_experiments():
    rows = []
    outcomes = {}

    cases = [
        ("worker pool (Fig. 7)", lambda: worker_pool(tasks=1, workers=1),
         DivergenceKind.GOOD_SAMARITAN_VIOLATION),
        ("promise (Fig. 8)",
         lambda: promise_program(2, stale_read_bug=True),
         DivergenceKind.LIVELOCK),
    ]
    for name, factory, expected_kind in cases:
        fair = check(factory(), depth_bound=300)
        unfair = check(factory(), fairness=False, depth_bound=300,
                       max_executions=400, max_seconds=30)
        fair_kind = (fair.divergence.divergence.kind.value
                     if fair.divergence else "none")
        unfair_findings = ("violation" if unfair.violation else "none")
        rows.append([name, expected_kind.value, fair_kind, unfair_findings])
        outcomes[name] = (fair, unfair, expected_kind)
    return rows, outcomes


def test_section43_liveness_detection(benchmark, report):
    rows, outcomes = benchmark.pedantic(run_liveness_experiments,
                                        rounds=1, iterations=1)
    report("section43_liveness", format_table(
        ["program", "expected", "fair checker reports",
         "unfair baseline reports"],
        rows,
        title="Section 4.3 — liveness violations: fair checker vs "
              "unfair depth-bounded baseline",
    ))

    for name, (fair, unfair, expected_kind) in outcomes.items():
        assert not fair.ok, f"{name}: fair checker missed the defect"
        assert fair.divergence is not None
        assert fair.divergence.divergence.kind is expected_kind, (
            f"{name}: classified as {fair.divergence.divergence.kind}, "
            f"expected {expected_kind}"
        )
        # The unfair baseline cannot report liveness errors at all.
        assert unfair.violation is None, (
            f"{name}: unfair baseline unexpectedly reported a violation"
        )
