"""Ablation: sleep-set partial-order reduction (Section 5 outlook).

Measures the fraction of executions saved by sleep sets on programs with
varying degrees of independence, under the fair scheduler — the
"reduce the set of all fair schedules" the paper projects.
"""

from repro.bench.tables import format_table
from repro.core.policies import fair_policy
from repro.engine.coverage import CoverageTracker
from repro.engine.executor import ExecutorConfig
from repro.engine.results import Outcome
from repro.engine.strategies import (
    ExplorationLimits,
    explore_dfs,
    explore_dfs_sleepsets,
)
from repro.runtime.program import VMProgram
from repro.sync.mutex import Mutex
from repro.workloads.dining import dining_philosophers

LIMITS = ExplorationLimits(max_executions=60_000, max_seconds=20.0,
                           stop_on_first_violation=False,
                           stop_on_first_divergence=False)


def lanes_program(n):
    """n fully independent lock/unlock threads (maximum reduction)."""

    def setup(env):
        locks = [Mutex(name=f"m{i}") for i in range(n)]

        def worker(m):
            yield from m.acquire()
            yield from m.release()

        for i in range(n):
            env.spawn(worker, locks[i], name=f"w{i}")
        env.set_state_fn(lambda: tuple(m.owner_name() for m in locks))

    return VMProgram(setup, name=f"lanes({n})")


def compare(program_factory):
    full_cov, por_cov = CoverageTracker(), CoverageTracker()
    full = explore_dfs(program_factory(), fair_policy(),
                       ExecutorConfig(depth_bound=300), LIMITS,
                       coverage=full_cov)
    por = explore_dfs_sleepsets(program_factory(), fair_policy(),
                                depth_bound=300, limits=LIMITS,
                                coverage=por_cov)
    return (full, por, full_cov, por_cov)


def test_ablation_sleep_sets(benchmark, report):
    def run():
        rows = []
        raw = []
        for name, factory in [
            ("lanes(3) — independent", lambda: lanes_program(3)),
            ("lanes(4) — independent", lambda: lanes_program(4)),
            ("dining(2) — contended", lambda: dining_philosophers(2)),
        ]:
            full, por, full_cov, por_cov = compare(factory)
            full_terminal = full.outcomes[Outcome.TERMINATED]
            por_terminal = por.outcomes[Outcome.TERMINATED]
            rows.append([
                name, full_terminal, por_terminal,
                f"{100 * (1 - por_terminal / max(full_terminal, 1)):.0f}%",
                "yes" if full_cov.signatures() == por_cov.signatures()
                else "NO",
            ])
            raw.append((name, full_terminal, por_terminal,
                        full_cov.signatures() == por_cov.signatures()))
        return rows, raw

    rows, raw = benchmark.pedantic(run, rounds=1, iterations=1)
    report("ablation_por", format_table(
        ["program", "executions (full)", "executions (sleep sets)",
         "saved", "coverage preserved"],
        rows,
        title="Ablation — sleep-set POR under the fair scheduler",
    ))

    for name, full_terminal, por_terminal, preserved in raw:
        assert preserved, f"{name}: sleep sets lost states"
        assert por_terminal <= full_terminal
    # Independent lanes must show real reduction.
    assert raw[0][2] < raw[0][1]
