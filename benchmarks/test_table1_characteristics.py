"""Table 1: characteristics of the input programs.

LOC, threads created, and synchronization operations performed per
execution of each workload under the checker — the paper's Table 1, with
our substitutes in place of the proprietary systems (see DESIGN.md §2).
"""

from repro.bench.experiments import program_characteristics
from repro.bench.tables import format_table

import repro.workloads.ape as ape_module
import repro.workloads.dining as dining_module
import repro.workloads.dryad_channels as dryad_module
import repro.workloads.promise as promise_module
import repro.workloads.singularity as singularity_module
import repro.workloads.wsq as wsq_module
from repro.workloads.ape import ape_program
from repro.workloads.dining import dining_philosophers
from repro.workloads.dryad_channels import dryad_fifo, dryad_pipeline
from repro.workloads.promise import promise_program
from repro.workloads.singularity import singularity_boot
from repro.workloads.wsq import work_stealing_queue


def build_rows():
    # Configurations sized to echo Table 1's thread counts:
    # dining 3, WSQ 3, Promise 3, APE 4, Dryad Channels 5,
    # Dryad Fifo 25, Singularity 14.
    programs = [
        (dining_philosophers(3), dining_module),
        (work_stealing_queue(items=3, stealers=1), wsq_module),
        (promise_program(2), promise_module),
        (ape_program(items=3, workers=3), ape_module),
        (dryad_pipeline(items=3, transforms=2, capacity=2), dryad_module),
        (dryad_fifo(width=12, items=2), dryad_module),
        (singularity_boot(apps=9, requests_per_app=8), singularity_module),
    ]
    return [
        program_characteristics(program, module, seed=1)
        for program, module in programs
    ]


def test_table1_characteristics(benchmark, report):
    rows = benchmark.pedantic(build_rows, rounds=1, iterations=1)
    report("table1_characteristics", format_table(
        ["program", "LOC", "threads", "sync ops"],
        rows,
        title="Table 1 — characteristics of input programs "
              "(one full execution under the checker)",
    ))
    by_name = {row[0]: row for row in rows}

    # Thread counts mirror Table 1's column.
    assert by_name["dining(3)"][2] == 3
    assert by_name["wsq(items=3, stealers=1)"][2] == 3
    assert by_name["promise(n=2)"][2] == 3
    assert by_name["ape(items=3, workers=3)"][2] == 4
    assert by_name["dryad-channels(items=3, transforms=2)"][2] == 5
    assert by_name["dryad-fifo(width=12, items=2)"][2] == 25
    assert by_name["singularity(apps=9, requests=8)"][2] == 14

    # Sync-op ordering follows the paper's: the OS boot dwarfs the rest.
    sync_ops = {name: row[3] for name, row in by_name.items()}
    assert sync_ops["singularity(apps=9, requests=8)"] == max(sync_ops.values())
    assert all(count > 0 for count in sync_ops.values())
