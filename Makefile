# Convenience targets; see README.md.

.PHONY: install test bench bench-full examples clean

install:
	pip install -e . --no-build-isolation

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_SCALE=full pytest benchmarks/ --benchmark-only

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f || exit 1; done

# benchmarks/results/ holds committed reference outputs — never clean it.
clean:
	rm -rf .pytest_cache .hypothesis .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
